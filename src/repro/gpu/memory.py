"""Simulated GPU global memory backed by an NVM persistence domain.

Every *persistent* buffer has two images:

* ``data`` — the **volatile view**: what running kernels observe. It is
  the merge of cached (not yet persisted) lines and NVM contents.
* ``shadow`` — the **NVM view**: what would survive a power failure.

Stores update ``data`` immediately and mark the touched cache lines
dirty in a bounded :class:`~repro.gpu.cache.WriteBackCache`. Lines reach
``shadow`` only when the cache evicts them (or on an explicit
:meth:`GlobalMemory.drain`). :meth:`GlobalMemory.crash` throws away
every still-dirty line, leaving ``data`` equal to ``shadow`` — exactly
the state a real machine would reboot into. This is the substrate on
which Lazy Persistency's "stores persist out of order, arbitrarily
late" semantics rest.

Buffers are line-aligned, so every cache line belongs to exactly one
buffer; a sorted interval index maps line ids back to buffers for
write-back and accounting.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np

from repro.errors import AllocationError, OutOfBoundsError
from repro.gpu.cache import WriteBackCache
from repro.nvm.model import WritebackReason, WriteStats
from repro.obs import current as _recorder

#: Default dirty-line capacity: 6 MiB of 128-byte lines, matching the
#: V100 L2 as the volume of data that can be pending persistence.
DEFAULT_CACHE_LINES = (6 * 1024 * 1024) // 128


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class Buffer:
    """One allocation in simulated global memory.

    Exposes the volatile image as :attr:`array` (shaped) and the NVM
    image as :attr:`nvm_array`. Client code should go through
    :class:`GlobalMemory` (or a kernel's ``BlockContext``) for writes so
    persistence tracking stays correct; direct mutation of
    ``buffer.array`` bypasses the persistence domain and is reserved for
    test setup of *non-persistent* scratch data.
    """

    def __init__(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: np.dtype,
        base_addr: int,
        line_size: int,
        persistent: bool,
    ) -> None:
        self.name = name
        self.shape = shape
        self.dtype = np.dtype(dtype)
        self.persistent = persistent
        self.line_size = line_size
        self.base_addr = base_addr

        self.size = int(np.prod(shape)) if shape else 1
        self.data = np.zeros(self.size, dtype=self.dtype)
        self.shadow = self.data.copy() if persistent else None

        self.nbytes = self.size * self.dtype.itemsize
        self.padded_bytes = _ceil_div(max(self.nbytes, 1), line_size) * line_size
        self.first_line = base_addr // line_size
        self.n_lines = self.padded_bytes // line_size

    # -- views ----------------------------------------------------------

    @property
    def array(self) -> np.ndarray:
        """The volatile image, shaped as allocated."""
        return self.data.reshape(self.shape)

    @property
    def nvm_array(self) -> np.ndarray:
        """The persisted (NVM) image, shaped as allocated."""
        if self.shadow is None:
            raise AllocationError(f"buffer {self.name!r} is not persistent")
        return self.shadow.reshape(self.shape)

    # -- line geometry ---------------------------------------------------

    def lines_for_indices(self, flat_idx: np.ndarray) -> np.ndarray:
        """Global line ids covering the given flat element indices."""
        byte_off = flat_idx.astype(np.int64) * self.dtype.itemsize
        first = (self.base_addr + byte_off) // self.line_size
        if self.dtype.itemsize > 1:
            # An element may straddle a line boundary only if itemsize
            # does not divide line_size; with power-of-two sizes it never
            # does, so the first line suffices.
            pass
        return np.unique(first)

    def line_byte_range(self, line_id: int) -> tuple[int, int]:
        """Byte range ``[lo, hi)`` of a global line within this buffer."""
        lo = (line_id - self.first_line) * self.line_size
        if lo < 0 or lo >= self.padded_bytes:
            raise OutOfBoundsError(
                f"line {line_id} is not in buffer {self.name!r}"
            )
        return lo, min(lo + self.line_size, self.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "persistent" if self.persistent else "scratch"
        return f"Buffer({self.name!r}, {self.shape}, {self.dtype}, {kind})"


@dataclass
class CrashReport:
    """What a simulated crash lost (and what squeaked through)."""

    lost_lines: list[int] = field(default_factory=list)
    persisted_lines: list[int] = field(default_factory=list)
    lost_by_buffer: dict[str, int] = field(default_factory=dict)

    @property
    def n_lost(self) -> int:
        """Number of dirty lines whose contents did not survive."""
        return len(self.lost_lines)


class GlobalMemory:
    """The device's global address space plus its persistence domain."""

    def __init__(
        self,
        line_size: int = 128,
        cache_capacity_lines: int = DEFAULT_CACHE_LINES,
        write_stats: WriteStats | None = None,
        shadow=None,
    ) -> None:
        if line_size <= 0 or line_size & (line_size - 1):
            raise AllocationError("line_size must be a positive power of two")
        if shadow is not None and shadow.line_size != line_size:
            raise AllocationError(
                f"shadow backend line size {shadow.line_size} != memory "
                f"line size {line_size}"
            )
        self.line_size = line_size
        self.cache = WriteBackCache(cache_capacity_lines)
        self.write_stats = write_stats or WriteStats(line_size=line_size)
        #: Durable write-back target (e.g. an
        #: :class:`~repro.nvm.mapped.MappedShadow`). When set, every
        #: persistent allocation's NVM image is a view into the backend
        #: and write-backs are journalled through ``arm``/``commit``.
        self.shadow_backend = shadow
        self._buffers: dict[str, Buffer] = {}
        self._next_addr = 0
        #: Allocation epoch: bumped on every alloc/free so pooled
        #: launch engines can tell when their forked workers' buffer
        #: tables (and any shared device image) went stale.
        self.version = 0
        #: Worker-process scribble mode: stores update the volatile
        #: image only (see :meth:`enter_worker_mode`).
        self._worker_mode = False
        # Parallel arrays for bisect: first-line of each live buffer,
        # kept sorted by construction (addresses grow monotonically).
        self._index_first_lines: list[int] = []
        self._index_buffers: list[Buffer] = []

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    @property
    def alloc_cursor(self) -> int:
        """The bump allocator's next address (addresses are never reused)."""
        return self._next_addr

    def set_alloc_cursor(self, addr: int) -> None:
        """Advance the bump allocator to ``addr``.

        Restart-replay support: a process rebuilding a crashed peer's
        memory layout records the peer's cursor before a request window
        and replays the window's allocations from the same address, so
        every replayed buffer lands at the ``base_addr`` the durable
        heap directory knows it by. The cursor only ever moves forward
        — rewinding could overlap live buffers.
        """
        if addr < self._next_addr:
            raise AllocationError(
                f"alloc cursor may only advance: {addr} < {self._next_addr}"
            )
        if addr % self.line_size:
            raise AllocationError(
                f"alloc cursor {addr} is not {self.line_size}-byte aligned"
            )
        self._next_addr = addr

    def alloc(
        self,
        name: str,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | type = np.float32,
        persistent: bool = True,
        init: np.ndarray | None = None,
    ) -> Buffer:
        """Allocate a named, line-aligned buffer.

        ``init`` (if given) seeds both the volatile and NVM images, i.e.
        the data is considered persisted at allocation time — matching a
        kernel input that was durably staged before launch.
        """
        if name in self._buffers:
            raise AllocationError(f"buffer {name!r} already allocated")
        if isinstance(shape, int):
            shape = (shape,)
        if any(s <= 0 for s in shape):
            raise AllocationError(f"bad shape for {name!r}: {shape}")

        buf = Buffer(name, shape, np.dtype(dtype), self._next_addr,
                     self.line_size, persistent)
        if init is not None:
            arr = np.asarray(init, dtype=buf.dtype)
            if arr.shape != shape:
                raise AllocationError(
                    f"init shape {arr.shape} != buffer shape {shape}"
                )
            buf.data[:] = arr.reshape(-1)
            if buf.shadow is not None:
                buf.shadow[:] = buf.data

        if buf.persistent and self.shadow_backend is not None:
            buf.shadow = self.shadow_backend.attach(buf)

        self._next_addr += buf.padded_bytes
        self._buffers[name] = buf
        self._index_first_lines.append(buf.first_line)
        self._index_buffers.append(buf)
        self.version += 1
        return buf

    def free(self, name: str) -> None:
        """Release a buffer, discarding any of its pending dirty lines."""
        buf = self._buffers.pop(name, None)
        if buf is None:
            raise AllocationError(f"no buffer named {name!r}")
        lines = range(buf.first_line, buf.first_line + buf.n_lines)
        self.cache.discard(lines)
        if buf.persistent and self.shadow_backend is not None:
            self.shadow_backend.detach(name)
        pos = self._index_buffers.index(buf)
        del self._index_first_lines[pos]
        del self._index_buffers[pos]
        self.version += 1

    def __contains__(self, name: str) -> bool:
        return name in self._buffers

    def __getitem__(self, name: str) -> Buffer:
        try:
            return self._buffers[name]
        except KeyError:
            raise AllocationError(f"no buffer named {name!r}") from None

    @property
    def buffers(self) -> dict[str, Buffer]:
        """Live allocations by name (read-only use, please)."""
        return self._buffers

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def read(self, buf: Buffer, flat_idx: np.ndarray) -> np.ndarray:
        """Load elements from the volatile image."""
        self._check_bounds(buf, flat_idx)
        return buf.data[flat_idx]

    def write(self, buf: Buffer, flat_idx: np.ndarray, values: np.ndarray) -> None:
        """Store elements; persistent stores enter the cache dirty."""
        self._check_bounds(buf, flat_idx)
        buf.data[flat_idx] = values
        if self._worker_mode:
            # Scribble mode: a pool worker only needs volatile
            # semantics (a block may re-read its own stores). The
            # persistence domain — cache recency, evictions, shadow
            # images, write statistics — is owned by the parent, which
            # re-applies every store during deterministic replay.
            return
        if buf.persistent:
            lines = buf.lines_for_indices(np.asarray(flat_idx))
            evicted = self.cache.touch_write(lines.tolist())
            if evicted:
                self._write_back(evicted, WritebackReason.EVICTION)

    # ------------------------------------------------------------------
    # Persistence-domain events
    # ------------------------------------------------------------------

    def drain(self) -> int:
        """Write back every dirty line; returns how many were written.

        With a durable shadow backend this is also the durability
        point: the backend is synced so the heap file reflects every
        drained line.
        """
        with _recorder().trace.span("nvm.drain", cat="nvm", track="nvm"):
            lines = self.cache.drain()
            self._write_back(lines, WritebackReason.DRAIN)
            if self.shadow_backend is not None:
                self.shadow_backend.sync()
        return len(lines)

    def flush(self, buf: Buffer, flat_idx: np.ndarray) -> int:
        """``clwb``-style explicit write-back of the lines under ``flat_idx``.

        The Eager Persistency primitive: force the touched cache lines
        into NVM *now* rather than waiting for eviction. Returns the
        number of lines actually written (lines already clean cost
        nothing). A no-op for non-persistent buffers.
        """
        if not buf.persistent:
            return 0
        self._check_bounds(buf, np.asarray(flat_idx))
        lines = buf.lines_for_indices(np.asarray(flat_idx))
        flushed = self.cache.evict_specific(lines.tolist())
        self._write_back(flushed, WritebackReason.FLUSH)
        return len(flushed)

    def crash(
        self,
        persist_fraction: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> CrashReport:
        """Simulate a power failure.

        ``persist_fraction`` of the dirty lines (chosen at random with
        ``rng``) are treated as having been evicted just before the
        failure; the rest are lost. After this call the volatile image
        of every persistent buffer equals its NVM image, and scratch
        buffers are zeroed (their contents do not survive a reboot).
        """
        if not 0.0 <= persist_fraction <= 1.0:
            raise ValueError("persist_fraction must be in [0, 1]")
        report = CrashReport()

        dirty = self.cache.dirty_lines
        if persist_fraction > 0.0 and dirty:
            rng = rng or np.random.default_rng(0)
            n_keep = int(round(persist_fraction * len(dirty)))
            keep = rng.choice(len(dirty), size=n_keep, replace=False)
            saved = [dirty[i] for i in np.sort(keep)]
            self.cache.evict_specific(saved)
            self._write_back(saved, WritebackReason.CRASH_RACE)
            report.persisted_lines = saved

        lost = self.cache.drop_all()
        report.lost_lines = lost
        for lid in lost:
            buf = self._buffer_of_line(lid)
            report.lost_by_buffer[buf.name] = (
                report.lost_by_buffer.get(buf.name, 0) + 1
            )

        for buf in self._buffers.values():
            if buf.persistent:
                buf.data[:] = buf.shadow
            else:
                buf.data[:] = 0

        rec = _recorder()
        if rec.active:
            rec.trace.instant(
                "nvm.crash", cat="nvm", track="nvm",
                lost_lines=report.n_lost,
                persisted_lines=len(report.persisted_lines),
            )
            for name, n in report.lost_by_buffer.items():
                rec.metrics.inc("nvm.crash.lost_lines", n, buffer=name)
        return report

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_bounds(self, buf: Buffer, flat_idx: np.ndarray) -> None:
        idx = np.asarray(flat_idx)
        if idx.size == 0:
            return
        lo, hi = int(idx.min()), int(idx.max())
        if lo < 0 or hi >= buf.size:
            raise OutOfBoundsError(
                f"indices [{lo}, {hi}] out of range for buffer "
                f"{buf.name!r} of size {buf.size}"
            )

    def _buffer_of_line(self, line_id: int) -> Buffer:
        pos = bisect.bisect_right(self._index_first_lines, line_id) - 1
        if pos < 0:
            raise OutOfBoundsError(f"line {line_id} maps to no buffer")
        buf = self._index_buffers[pos]
        if line_id >= buf.first_line + buf.n_lines:
            raise OutOfBoundsError(f"line {line_id} maps to no live buffer")
        return buf

    def enter_worker_mode(self) -> None:
        """Put this (forked) copy of the memory into scribble mode.

        Called once in each pool worker: instead of duplicating every
        NVM image, the worker keeps its attach-by-name views — the
        shared device image and any ``MAP_SHARED`` durable heap
        inherited across ``fork`` — but gives up the right to
        *persist* anything.
        :meth:`write` updates the volatile image only, and a durable
        backend is sealed so an accidental write-back path raises
        instead of corrupting the parent's heap file. Effects reach the
        persistence domain exclusively through the parent's
        deterministic replay.
        """
        self._worker_mode = True
        if self.shadow_backend is not None:
            self.shadow_backend.seal()
            self.shadow_backend = None

    @property
    def image_nbytes(self) -> int:
        """Bytes of line-aligned address space allocated so far."""
        return self._next_addr

    def export_data_image(self, raw) -> None:
        """Move every buffer's volatile image into ``raw`` (zero-copy).

        ``raw`` is a writable buffer (e.g. a shared-memory segment's
        memoryview) covering at least :attr:`image_nbytes`. Each
        buffer's ``data`` array is copied in at its line-aligned
        ``base_addr`` and re-pointed to a view of ``raw``, so processes
        mapping the same segment observe one coherent volatile image.
        ``Buffer.array`` is a property over ``data`` — existing handles
        stay valid across the re-point.
        """
        for buf in self._buffers.values():
            view = np.frombuffer(raw, dtype=buf.dtype, count=buf.size,
                                 offset=buf.base_addr)
            view[:] = buf.data
            buf.data = view

    def materialize_data(self) -> None:
        """Copy every buffer's volatile image back to private arrays.

        The inverse of :meth:`export_data_image`: drops all views into
        shared segments so the segment can be closed and unlinked.
        """
        for buf in self._buffers.values():
            buf.data = np.array(buf.data, copy=True)

    def _write_back(self, line_ids: list[int], reason: WritebackReason) -> None:
        """Copy dirty lines to their NVM images.

        With a durable backend the copy is bracketed by the backend's
        torn-write journal: intent is armed before any byte moves and
        committed after the last — a process killed in between leaves
        an armed journal for :meth:`~repro.nvm.mapped.MappedShadow.open`
        to surface.
        """
        if not line_ids:
            return
        backend = self.shadow_backend
        if backend is not None:
            backend.arm(line_ids)
        self._copy_back(line_ids, reason)
        if backend is not None:
            backend.commit(len(line_ids))

    def _copy_back(self, line_ids: list[int], reason: WritebackReason) -> None:
        metrics = _recorder().metrics
        if len(line_ids) <= 4:
            # Scalar path for the common per-store eviction trickle.
            for lid in line_ids:
                buf = self._buffer_of_line(lid)
                if buf.shadow is None:
                    continue
                lo, hi = buf.line_byte_range(lid)
                if lo >= hi:
                    continue
                src = buf.data.view(np.uint8)[lo:hi]
                buf.shadow.view(np.uint8)[lo:hi] = src
                self.write_stats.record(reason, buf.name)
                if metrics.active:
                    metrics.inc("nvm.writeback.lines",
                                reason=reason.value, buffer=buf.name)
            return

        # Bulk path (drains, batched evictions): one searchsorted maps
        # every line to its buffer, then consecutive lines coalesce into
        # a handful of slice copies per buffer.
        lines = np.asarray(line_ids, dtype=np.int64)
        firsts = np.asarray(self._index_first_lines, dtype=np.int64)
        pos = np.searchsorted(firsts, lines, side="right") - 1
        if (pos < 0).any():
            bad = int(lines[pos < 0][0])
            raise OutOfBoundsError(f"line {bad} maps to no buffer")
        for p in np.unique(pos):
            buf = self._index_buffers[int(p)]
            group = lines[pos == p]
            beyond = group >= buf.first_line + buf.n_lines
            if beyond.any():
                bad = int(group[beyond][0])
                raise OutOfBoundsError(
                    f"line {bad} maps to no live buffer"
                )
            if buf.shadow is None:
                continue
            lo = (group - buf.first_line) * self.line_size
            hi = np.minimum(lo + self.line_size, buf.nbytes)
            lo = np.sort(lo[lo < hi])
            if lo.size == 0:
                continue
            src = buf.data.view(np.uint8)
            dst = buf.shadow.view(np.uint8)
            # Runs of consecutive lines copy with one slice each.
            breaks = np.flatnonzero(np.diff(lo) != self.line_size) + 1
            for run in np.split(lo, breaks):
                start = int(run[0])
                end = min(int(run[-1]) + self.line_size, buf.nbytes)
                dst[start:end] = src[start:end]
            self.write_stats.record(reason, buf.name, n_lines=int(lo.size))
            if metrics.active:
                metrics.inc("nvm.writeback.lines", int(lo.size),
                            reason=reason.value, buffer=buf.name)
