"""The simulated GPU device: launches kernels, times them, crashes.

:class:`Device` owns the global memory (with its NVM persistence
domain), a cost model, and the launch machinery. Thread blocks execute
one at a time — functionally this is indistinguishable from any other
interleaving for the paper's workloads, whose blocks write disjoint
outputs (the associativity property LP regions require) — while the
cost model accounts for the parallelism the real machine would achieve.

Blocks can run in *shuffled* order (the GPU guarantees no block
ordering; tests use this to check that LP really is order-insensitive)
and a launch can carry a :class:`~repro.nvm.crash.CrashPlan` that kills
the device mid-kernel, losing all not-yet-evicted cache lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CrashedDeviceError, LaunchError
from repro.gpu.atomics import AtomicUnit
from repro.gpu.costs import CostModel, Tally, TimeBreakdown
from repro.gpu.engine import LaunchEngine, LaunchPlan, make_engine
from repro.gpu.kernel import ExecMode, Kernel, LaunchConfig
from repro.gpu.memory import CrashReport, GlobalMemory
from repro.gpu.spec import GPUSpec, NVMSpec
from repro.nvm.crash import CrashPlan
from repro.obs import current as _recorder


@dataclass
class LaunchResult:
    """Everything a kernel launch produced besides its memory effects."""

    kernel_name: str
    config: LaunchConfig
    completed_blocks: list[int]
    crashed: bool
    crash_report: CrashReport | None
    tally: Tally
    time: TimeBreakdown
    #: Blocks the launch was *asked* to run (the grid, or the explicit
    #: ``block_ids`` list) — before any crash-plan truncation. Partial
    #: validations after a crash-during-recovery read this, not
    #: ``n_completed``.
    requested_blocks: int = 0

    @property
    def n_completed(self) -> int:
        """Blocks that ran to completion before any crash."""
        return len(self.completed_blocks)

    @property
    def total_cycles(self) -> float:
        """Modeled end-to-end time in device cycles."""
        return self.time.total_cycles

    def to_dict(self) -> dict:
        """The launch outcome as one JSON-serializable dict."""
        return {
            "kernel": self.kernel_name,
            "n_blocks": self.config.n_blocks,
            "threads_per_block": self.config.threads_per_block,
            "n_requested": self.requested_blocks,
            "n_completed": self.n_completed,
            "crashed": self.crashed,
            "crash": None if self.crash_report is None else {
                "lost_lines": self.crash_report.n_lost,
                "persisted_lines": len(self.crash_report.persisted_lines),
                "lost_by_buffer": dict(sorted(
                    self.crash_report.lost_by_buffer.items())),
            },
            "tally": self.tally.to_dict(),
            "time": self.time.to_dict(),
        }


@dataclass
class Device:
    """A simulated NVM-backed GPU.

    Parameters
    ----------
    spec / nvm:
        Hardware parameters; defaults are the paper's V100 with a
        DRAM-speed persistence domain (Section III-A).
    cache_capacity_lines:
        Dirty-line capacity of the persistence domain's write-back
        cache; defaults to the spec's L2 size. Small values make crashes
        lose little (almost everything evicted); large values make
        crashes lose a lot.
    block_order:
        ``"sequential"`` or ``"shuffled"`` — the order thread blocks
        execute in. The GPU guarantees neither.
    seed:
        Seed for shuffled block order and crash lotteries.
    engine:
        How blocks execute: a :class:`~repro.gpu.engine.LaunchEngine`
        instance, an engine name (``"serial"`` / ``"parallel"`` /
        ``"batched"``), or ``None`` for serial. All engines are
        bit-identical in results; see :mod:`repro.gpu.engine`.
    shadow:
        Optional durable write-back target (a
        :class:`~repro.nvm.mapped.MappedShadow`). When given, every
        persistent buffer's NVM image lives in the heap file and
        survives the death of this process.
    """

    spec: GPUSpec = field(default_factory=GPUSpec.v100)
    nvm: NVMSpec = field(default_factory=NVMSpec.dram_like)
    cache_capacity_lines: int | None = None
    block_order: str = "sequential"
    seed: int = 0
    engine: LaunchEngine | str | None = None
    shadow: object | None = None

    def __post_init__(self) -> None:
        if self.block_order not in ("sequential", "shuffled"):
            raise LaunchError(f"unknown block order {self.block_order!r}")
        self.engine = make_engine(self.engine)
        capacity = self.cache_capacity_lines
        if capacity is None:
            capacity = self.spec.l2_bytes // self.spec.line_size
        self.memory = GlobalMemory(
            line_size=self.spec.line_size, cache_capacity_lines=capacity,
            shadow=self.shadow,
        )
        self.cost_model = CostModel(spec=self.spec, nvm=self.nvm)
        self.crashed = False
        #: The most recent crash's :class:`CrashReport` (forensics input).
        self.last_crash_report: CrashReport | None = None
        #: Optional callback fired once per completed block (with the
        #: cumulative completed-block count) by every engine — the
        #: crash harness's "kill after N blocks" trigger point.
        self.block_hook = None
        self._rng = np.random.default_rng(self.seed)
        self._launch_counter = 0

    # ------------------------------------------------------------------
    # Memory façade
    # ------------------------------------------------------------------

    def alloc(self, name, shape, dtype=np.float32, persistent=True, init=None):
        """Allocate a buffer in device global memory."""
        return self.memory.alloc(
            name, shape, dtype=dtype, persistent=persistent, init=init
        )

    def free(self, name: str) -> None:
        """Free a device buffer."""
        self.memory.free(name)

    def drain(self) -> int:
        """Flush the persistence domain (e.g. before a clean shutdown)."""
        return self.memory.drain()

    # ------------------------------------------------------------------
    # Launching
    # ------------------------------------------------------------------

    def launch(
        self,
        kernel: Kernel,
        crash_plan: CrashPlan | None = None,
        block_ids: list[int] | None = None,
        mode: ExecMode = ExecMode.NORMAL,
    ) -> LaunchResult:
        """Run a kernel (optionally only specific blocks, e.g. recovery).

        ``crash_plan`` kills the device after the plan's block count;
        the result reports what the persistence domain lost. After a
        crash the device refuses further launches until
        :meth:`restart`.
        """
        if self.crashed:
            raise CrashedDeviceError(
                "device has crashed; call restart() before launching"
            )
        config = kernel.launch_config()
        order = self._block_order(config, block_ids)
        requested = len(order)

        atomics = AtomicUnit(self.memory)
        crash_report: CrashReport | None = None
        # A crash plan always crashes: either mid-kernel (truncating the
        # block list) or right at kernel completion, with the write-back
        # cache still holding dirty lines.
        crashed = crash_plan is not None
        if crash_plan is not None:
            order = order[:crash_plan.after_blocks]

        # Persist-barrier cost parameters for Eager Persistency kernels:
        # the stall exposes the NVM write latency, amortized over the
        # blocks resident at this block size.
        fence_latency = max(60.0, self.nvm.write_latency_cycles(self.spec))
        fence_concurrency = min(
            config.n_blocks,
            self.spec.concurrent_blocks(config.threads_per_block),
        )

        plan = LaunchPlan(
            kernel=kernel,
            config=config,
            memory=self.memory,
            atomics=atomics,
            mode=mode,
            block_ids=order,
            fence_latency=fence_latency,
            fence_concurrency=fence_concurrency,
            block_hook=self.block_hook,
        )
        rec = _recorder()
        with rec.trace.span(
            "device.launch", cat="device", track="device",
            kernel=kernel.name, engine=self.engine.name, mode=mode.name,
            blocks=len(order),
        ):
            # The engine owns the tally end to end, atomic totals
            # included (Tally.absorb_atomics at its terminal site).
            completed, tally = self.engine.execute(plan)

        if crashed:
            assert crash_plan is not None
            crash_report = self.memory.crash(
                persist_fraction=crash_plan.persist_fraction,
                rng=crash_plan.rng(),
            )
            self.crashed = True
            self.last_crash_report = crash_report

        self._launch_counter += 1
        if rec.metrics.active:
            rec.metrics.inc("device.launches", mode=mode.name)
        return LaunchResult(
            kernel_name=kernel.name,
            config=config,
            completed_blocks=completed,
            crashed=crashed,
            crash_report=crash_report,
            tally=tally,
            time=self.cost_model.time_of(tally),
            requested_blocks=requested,
        )

    def restart(self) -> None:
        """Reboot after a crash; memory shows only persisted contents."""
        self.crashed = False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _block_order(
        self, config: LaunchConfig, block_ids: list[int] | None
    ) -> list[int]:
        if block_ids is None:
            order = list(range(config.n_blocks))
        else:
            bad = [b for b in block_ids if not 0 <= b < config.n_blocks]
            if bad:
                raise LaunchError(f"block ids outside grid: {bad[:5]}")
            if len(set(block_ids)) != len(block_ids):
                seen: set[int] = set()
                dups = sorted(
                    {b for b in block_ids if b in seen or seen.add(b)}
                )
                raise LaunchError(
                    f"duplicate block ids in launch: {dups[:5]} — a block "
                    "is one LP region and must execute exactly once "
                    "(re-running it would double-count tallies)"
                )
            order = list(block_ids)
        if self.block_order == "shuffled":
            self._rng.shuffle(order)
        return order
