"""Pluggable launch engines: how a launch's thread blocks get executed.

The paper's central observation is that LP regions (= thread blocks) are
*associative*: the GPU guarantees no inter-block ordering, so any
schedule that applies every block's effects exactly once is legal
(Section IV-A; Lin & Solihin make the same assumption for GPU
persistency models generally). The simulator exploits exactly that
property here. :class:`~repro.gpu.device.Device.launch` delegates the
block loop to a :class:`LaunchEngine`:

* :class:`SerialEngine` — the original one-block-at-a-time loop.
* :class:`ParallelEngine` — fans blocks out across a ``multiprocessing``
  worker pool. Workers run blocks against copy-on-write snapshots of
  device memory (a ``fork`` start method gives read-only snapshots for
  free) and send back per-block *operation records*: the stores,
  atomics and deferred checksum-table insertions each block issued,
  plus its cost tally. The parent then applies every record **in the
  launch's block order**, so cache recency, eviction order, NVM shadow
  state, write statistics, checksum tables and crash semantics are
  bit-identical to the serial engine.
* :class:`BatchedEngine` — vectorizes *groups* of homogeneous blocks
  across an extra numpy axis in-process (see
  :class:`~repro.gpu.batch.BatchBlockContext`), for kernels whose
  ``run_block`` is already array-shaped. Store application and table
  insertion again happen per block in launch order.

Determinism contract (shared by all engines): given the same plan, an
engine must produce the same ``completed_blocks``, the same tally, the
same volatile + NVM memory images, the same write-back statistics and
the same checksum-table contents as :class:`SerialEngine`. The parity
test suite (``tests/gpu/test_engines.py``) pins this bit-for-bit.

The post-crash pipeline is engine-pluggable too: ``VALIDATE`` blocks
*return* per-block outcome records (recomputed checksum lanes) instead
of mutating host state, so any engine can run them concurrently and
then hand the collected records — in the launch's block order — to
:meth:`~repro.gpu.kernel.Kernel.merge_validation_outcomes` for one
deterministic grid-wide table compare. ``RECOVER`` re-execution batches
and parallelizes exactly like forward execution (table refreshes stay
deferred to launch-order application).

Engines *fall back to serial* whenever the contract cannot be kept
cheaply: kernels that opt out (``parallel_safe`` / ``batchable``),
degenerate launches, or platforms without ``fork``.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
from dataclasses import dataclass, field

import numpy as np

from repro.errors import LaunchError
from repro.gpu.atomics import AtomicUnit
from repro.gpu.batch import BatchBlockContext
from repro.gpu.costs import Tally
from repro.gpu.kernel import BlockContext, ExecMode, Kernel, LaunchConfig
from repro.gpu.memory import GlobalMemory
from repro.obs import current as _recorder

#: Block-group granularity of serial/replay tracing spans: fine enough
#: to see progress, coarse enough that a 10k-block launch stays a
#: loadable timeline.
TRACE_GROUP_BLOCKS = 64


@dataclass
class LaunchPlan:
    """Everything an engine needs to execute one launch's blocks.

    ``block_ids`` is the final execution order, already shuffled and
    crash-truncated by the device; engines run exactly these blocks and
    nothing else.
    """

    kernel: Kernel
    config: LaunchConfig
    memory: GlobalMemory
    atomics: AtomicUnit
    mode: ExecMode
    block_ids: list[int]
    fence_latency: float = 660.0
    fence_concurrency: int = 1
    #: Optional callback fired with the cumulative completed-block
    #: count each time a block's effects land in the plan's memory
    #: (serial execution, parallel replay, batched application alike).
    #: The crash harness's "kill after N blocks" trigger point.
    block_hook: object | None = None

    def new_tally(self) -> Tally:
        """A zeroed launch-level tally with this plan's geometry."""
        return Tally(
            n_blocks=self.config.n_blocks,
            threads_per_block=self.config.threads_per_block,
        )

    def block_context(self, block_id: int,
                      mode: ExecMode | None = None) -> BlockContext:
        """A fresh context for one block of this launch."""
        return BlockContext(
            self.memory, self.atomics, self.config, block_id,
            self.mode if mode is None else mode,
            fence_latency_cycles=self.fence_latency,
            fence_concurrency=self.fence_concurrency,
        )


class LaunchEngine(abc.ABC):
    """Strategy for executing a launch plan's thread blocks."""

    #: Stable identifier used by :func:`make_engine` and reports.
    name: str = "engine"

    @abc.abstractmethod
    def execute(self, plan: LaunchPlan) -> tuple[list[int], Tally]:
        """Run every block in ``plan.block_ids``.

        Returns the completed block ids (in execution order) and the
        launch tally (atomic totals are filled in by the device
        afterwards, from the plan's :class:`AtomicUnit`).
        """


# ---------------------------------------------------------------------------
# Serial
# ---------------------------------------------------------------------------

class SerialEngine(LaunchEngine):
    """One block at a time — the reference semantics."""

    name = "serial"

    def execute(self, plan: LaunchPlan) -> tuple[list[int], Tally]:
        tally = plan.new_tally()
        completed: list[int] = []
        outcomes: list = []
        rec = _recorder()
        if rec.trace.enabled:
            # Per-block-group spans: chunked only when tracing, so the
            # default hot loop stays branch-free per block.
            ids = plan.block_ids
            for lo in range(0, len(ids), TRACE_GROUP_BLOCKS):
                group = ids[lo:lo + TRACE_GROUP_BLOCKS]
                with rec.trace.span(
                    "engine.blocks", cat="engine", track="engine",
                    engine=self.name, mode=plan.mode.name,
                    first=group[0], count=len(group),
                ):
                    self._run_blocks(plan, group, tally, completed,
                                     outcomes)
        else:
            self._run_blocks(plan, plan.block_ids, tally, completed,
                             outcomes)
        if plan.mode is ExecMode.VALIDATE:
            with rec.trace.span(
                "engine.validate.merge", cat="engine", track="engine",
                engine=self.name, blocks=len(completed),
            ):
                plan.kernel.merge_validation_outcomes(outcomes)
        tally.absorb_atomics(plan.atomics)
        if rec.metrics.active:
            rec.metrics.inc("engine.blocks.completed", len(completed),
                            engine=self.name)
        return completed, tally

    def _run_blocks(self, plan: LaunchPlan, block_ids: list[int],
                    tally: Tally, completed: list[int],
                    outcomes: list) -> None:
        kernel = plan.kernel
        for block_id in block_ids:
            ctx = plan.block_context(block_id)
            if plan.mode is ExecMode.VALIDATE:
                outcomes.append(kernel.validate_block(ctx))
            elif plan.mode is ExecMode.RECOVER:
                kernel.recover_block(ctx)
            else:
                kernel.run_block(ctx)
            tally.merge(ctx.finalize_tally())
            completed.append(block_id)
            if plan.block_hook is not None:
                plan.block_hook(len(completed))


# ---------------------------------------------------------------------------
# Parallel (process pool + deterministic replay)
# ---------------------------------------------------------------------------

@dataclass
class ChunkRecord:
    """One worker chunk's externally visible effects.

    A chunk covers a contiguous slice of the launch's block order, so
    applying chunks in submission order *is* launch-order application.
    Shipping one record (and one merged tally) per chunk instead of one
    per block is what keeps worker→parent IPC off the per-block path.

    ``ops[i]`` preserves block ``block_ids[i]``'s issue order; each
    entry is a tuple headed by an op code:

    * ``("st", buffer_name, idx, values)`` — a global store.
    * ``("atomic_add" | "atomic_max", buffer_name, idx, values)``.
    * ``("table", key, lanes)`` — a deferred checksum-table insertion
      (applied through :meth:`Kernel.apply_table_insert`).

    ``outcomes`` carries the per-block validation records of a
    ``VALIDATE``-mode chunk (``None`` otherwise).
    """

    block_ids: list[int]
    ops: list = field(default_factory=list)
    tally: Tally = field(default_factory=Tally)
    outcomes: list | None = None


class RecordingBlockContext(BlockContext):
    """A block context that logs externally visible effects for replay.

    Runs inside a worker process against a copy-on-write memory
    snapshot: operations apply *locally* (so the block observes its own
    writes, exactly as under serial execution) and are appended to the
    record the parent later replays. Reads are not logged — a
    ``parallel_safe`` kernel's loads depend only on pre-launch state
    and the block's own stores, both of which the snapshot reproduces.

    Operations whose *result* depends on other blocks' progress
    (``atomic_cas`` / ``atomic_exch``) or on cache state shared across
    blocks (``clwb``) cannot be replayed from a log and raise; kernels
    using them must set ``parallel_safe = False``.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.ops: list = []
        self.table_insert_deferral = self._defer_table_insert

    def _defer_table_insert(self, key: int, lanes: np.ndarray) -> None:
        self.ops.append(("table", int(key), np.array(lanes, copy=True)))

    def st(self, buf, idx, values, slots=None):
        buf = self.buffer(buf)
        idx_arr = np.atleast_1d(np.asarray(idx))
        vals = np.array(
            np.broadcast_to(np.asarray(values, dtype=buf.dtype),
                            idx_arr.shape)
        )
        # VALIDATE-mode persistent stores are suppressed by the base
        # context (memory contents feed the observer instead); logging
        # them would wrongly apply them during parent replay.
        if not (self.mode is ExecMode.VALIDATE and buf.persistent):
            self.ops.append(("st", buf.name, idx_arr.copy(), vals))
        super().st(buf, idx_arr, vals, slots=slots)

    def atomic_add(self, buf, idx, values):
        buf = self.buffer(buf)
        idx_arr = np.atleast_1d(np.asarray(idx))
        vals = np.array(np.asarray(values), copy=True)
        self.ops.append(("atomic_add", buf.name, idx_arr.copy(), vals))
        super().atomic_add(buf, idx_arr, values)

    def atomic_max(self, buf, idx, values):
        buf = self.buffer(buf)
        idx_arr = np.atleast_1d(np.asarray(idx))
        vals = np.array(np.asarray(values), copy=True)
        self.ops.append(("atomic_max", buf.name, idx_arr.copy(), vals))
        super().atomic_max(buf, idx_arr, values)

    def atomic_cas(self, buf, index, compare, value):
        raise LaunchError(
            "atomic_cas result depends on other blocks and cannot be "
            "replayed from a log; mark the kernel parallel_safe = False"
        )

    def atomic_exch(self, buf, index, value):
        raise LaunchError(
            "atomic_exch result depends on other blocks and cannot be "
            "replayed from a log; mark the kernel parallel_safe = False"
        )

    def clwb(self, buf, idx):
        raise LaunchError(
            "clwb flush counts depend on shared cache state and cannot "
            "be replayed from a log; mark the kernel parallel_safe = False"
        )


#: Plan inherited by forked pool workers (set just before the fork).
_WORKER_PLAN: LaunchPlan | None = None


def _run_worker_chunk(block_ids: list[int]) -> ChunkRecord:
    """Worker entry: run a chunk of blocks against the forked snapshot."""
    plan = _WORKER_PLAN
    assert plan is not None, "worker forked without a launch plan"
    # A MAP_SHARED durable heap is shared with the parent across the
    # fork — writing through inherited mapped shadows would corrupt the
    # parent's heap file. Workers simulate against private copies;
    # effects reach the parent only through the replayed op log.
    if plan.memory.shadow_backend is not None:
        plan.memory.privatize_shadow()
    # A private atomic unit: contention accounting happens in the
    # parent during replay, against the launch's real AtomicUnit.
    atomics = AtomicUnit(plan.memory)
    record = ChunkRecord(
        list(block_ids),
        outcomes=[] if plan.mode is ExecMode.VALIDATE else None,
    )
    for block_id in block_ids:
        ctx = RecordingBlockContext(
            plan.memory, atomics, plan.config, block_id, plan.mode,
            fence_latency_cycles=plan.fence_latency,
            fence_concurrency=plan.fence_concurrency,
        )
        if plan.mode is ExecMode.VALIDATE:
            record.outcomes.append(plan.kernel.validate_block(ctx))
        elif plan.mode is ExecMode.RECOVER:
            plan.kernel.recover_block(ctx)
        else:
            plan.kernel.run_block(ctx)
        record.tally.merge(ctx.finalize_tally())
        record.ops.append(ctx.ops)
    return record


class ParallelEngine(LaunchEngine):
    """Fan blocks out across a process pool; replay deterministically.

    Workers are forked per launch, inheriting the pre-launch memory
    image copy-on-write; they execute disjoint contiguous chunks of the
    block list and ship back one :class:`ChunkRecord` log per chunk
    (group-granular IPC — per-block record pickling is what used to eat
    the speedup). The parent applies the records in the launch's block
    order through the real memory system and atomic unit, reproducing
    the serial engine's cache recency, evictions, write statistics and
    table state exactly. ``VALIDATE`` and ``RECOVER`` launches
    parallelize the same way: validation blocks return outcome records
    (no host mutation, no table access in workers) that merge after
    replay, and recovery's table refreshes are deferred ops like any
    forward insert.

    Falls back to :class:`SerialEngine` when the plan cannot be
    parallelized faithfully: kernels with ``parallel_safe = False``,
    launches smaller than two blocks per worker, or platforms without
    the ``fork`` start method. A worker raising
    :class:`~repro.errors.LaunchError` (an unreplayable primitive) also
    falls back — worker memory is copy-on-write, so the parent image is
    untouched and serial re-execution is safe.
    """

    name = "parallel"

    def __init__(self, jobs: int = 4) -> None:
        if jobs < 1:
            raise LaunchError(f"ParallelEngine needs jobs >= 1, got {jobs}")
        self.jobs = jobs
        self._serial = SerialEngine()

    def execute(self, plan: LaunchPlan) -> tuple[list[int], Tally]:
        if not self._can_parallelize(plan):
            return self._serial.execute(plan)
        try:
            records = self._run_workers(plan)
        except LaunchError:
            return self._serial.execute(plan)
        return self._apply(plan, records)

    # -- worker phase ---------------------------------------------------

    def _can_parallelize(self, plan: LaunchPlan) -> bool:
        if not plan.kernel.parallel_safe:
            return False
        if self.jobs <= 1 or len(plan.block_ids) < 2 * self.jobs:
            return False
        if "fork" not in multiprocessing.get_all_start_methods():
            return False
        return True

    def _run_workers(self, plan: LaunchPlan) -> list[ChunkRecord]:
        global _WORKER_PLAN
        chunks = self._chunk(plan.block_ids)
        rec = _recorder()
        if rec.metrics.active:
            rec.metrics.inc("engine.scheduling.chunks", len(chunks),
                            engine=self.name)
        ctx = multiprocessing.get_context("fork")
        _WORKER_PLAN = plan
        try:
            with ctx.Pool(processes=self.jobs) as pool, rec.trace.span(
                "engine.workers", cat="engine", track="engine",
                engine=self.name, jobs=self.jobs, chunks=len(chunks),
            ):
                # ``map`` preserves chunk submission order, and chunks
                # are contiguous slices of ``plan.block_ids`` — so
                # iterating the results in order replays the launch's
                # exact block order.
                return pool.map(_run_worker_chunk, chunks)
        finally:
            _WORKER_PLAN = None

    def _chunk(self, block_ids: list[int]) -> list[list[int]]:
        """Contiguous chunks, a few per worker for load balance."""
        n = len(block_ids)
        n_chunks = min(n, self.jobs * 4)
        size = -(-n // n_chunks)
        return [block_ids[i:i + size] for i in range(0, n, size)]

    # -- deterministic replay -------------------------------------------

    def _apply(
        self, plan: LaunchPlan, records: list[ChunkRecord]
    ) -> tuple[list[int], Tally]:
        tally = plan.new_tally()
        completed: list[int] = []
        outcomes: list = []
        rec = _recorder()
        for record in records:
            # Replay in per-chunk spans (the worker scheduling
            # granularity) so the timeline shows the deterministic-apply
            # phase block range by block range.
            with rec.trace.span(
                "engine.replay", cat="engine", track="engine",
                engine=self.name, first=record.block_ids[0],
                count=len(record.block_ids),
            ):
                self._replay_chunk(plan, record, tally, completed)
            if record.outcomes is not None:
                outcomes.extend(record.outcomes)
        if plan.mode is ExecMode.VALIDATE:
            with rec.trace.span(
                "engine.validate.merge", cat="engine", track="engine",
                engine=self.name, blocks=len(completed),
            ):
                plan.kernel.merge_validation_outcomes(outcomes)
        tally.absorb_atomics(plan.atomics)
        if rec.metrics.active:
            rec.metrics.inc("engine.blocks.completed", len(completed),
                            engine=self.name)
        return completed, tally

    def _replay_chunk(
        self, plan: LaunchPlan, record: ChunkRecord,
        tally: Tally, completed: list[int],
    ) -> None:
        memory = plan.memory
        tally.merge(record.tally)
        for block_id, block_ops in zip(record.block_ids, record.ops):
            for op in block_ops:
                code = op[0]
                if code == "st":
                    _, name, idx, vals = op
                    memory.write(memory[name], idx, vals)
                elif code == "atomic_add":
                    _, name, idx, vals = op
                    plan.atomics.add(memory[name], idx, vals)
                elif code == "atomic_max":
                    _, name, idx, vals = op
                    plan.atomics.max_(memory[name], idx, vals)
                elif code == "table":
                    _, key, lanes = op
                    ctx = plan.block_context(block_id)
                    plan.kernel.apply_table_insert(ctx, key, lanes)
                    tally.merge(ctx.finalize_tally())
                else:  # pragma: no cover - defensive
                    raise LaunchError(f"unknown replay op {code!r}")
            completed.append(block_id)
            if plan.block_hook is not None:
                plan.block_hook(len(completed))


# ---------------------------------------------------------------------------
# Batched (vectorized groups, in-process)
# ---------------------------------------------------------------------------

class BatchedEngine(LaunchEngine):
    """Vectorize groups of homogeneous blocks across a numpy axis.

    The engine hands the kernel a
    :class:`~repro.gpu.batch.BatchBlockContext` covering up to
    ``group_size`` blocks; the kernel's ``run_block_batch`` computes
    every block's loads, stores and charges in whole-group array
    operations. Stores (and deferred table insertions) are then applied
    per block in launch order, so the persistence domain sees exactly
    the serial engine's write sequence.

    Requirements on batchable kernels (``batchable = True``): blocks
    must not read locations written during the same launch (the
    block-disjoint-output property LP regions have anyway), and any LP
    wrapper needs commutative checksum lanes. Falls back to
    :class:`SerialEngine` otherwise.

    ``VALIDATE`` launches run the vectorized re-validation fast path:
    each group recomputes every block's checksum lanes in one batched
    pass (``validate_block_batch``), and the collected outcome records
    merge through one grid-wide vectorized table compare. ``RECOVER``
    launches re-execute failed blocks in groups through
    ``recover_block_batch``, with refreshed checksums applied per block
    in launch order like any forward insert.
    """

    name = "batched"

    def __init__(self, group_size: int = 256) -> None:
        if group_size < 1:
            raise LaunchError(
                f"BatchedEngine needs group_size >= 1, got {group_size}"
            )
        self.group_size = group_size
        self._serial = SerialEngine()

    def execute(self, plan: LaunchPlan) -> tuple[list[int], Tally]:
        if not plan.kernel.batchable:
            return self._serial.execute(plan)

        tally = plan.new_tally()
        completed: list[int] = []
        outcomes: list = []
        rec = _recorder()
        ids = plan.block_ids
        for lo in range(0, len(ids), self.group_size):
            group = ids[lo:lo + self.group_size]
            with rec.trace.span(
                "engine.group", cat="engine", track="engine",
                engine=self.name, mode=plan.mode.name,
                first=group[0], count=len(group),
            ):
                bctx = BatchBlockContext(
                    plan.memory, plan.config, group, mode=plan.mode,
                    fence_latency_cycles=plan.fence_latency,
                    fence_concurrency=plan.fence_concurrency,
                )
                if plan.mode is ExecMode.VALIDATE:
                    outcomes.extend(plan.kernel.validate_block_batch(bctx))
                elif plan.mode is ExecMode.RECOVER:
                    plan.kernel.recover_block_batch(bctx)
                else:
                    plan.kernel.run_block_batch(bctx)
                tally.merge(bctx.finalize_tally())
                self._apply_group(plan, bctx, tally)
            completed.extend(group)
            if plan.block_hook is not None:
                for n in range(len(completed) - len(group) + 1,
                               len(completed) + 1):
                    plan.block_hook(n)
            if rec.metrics.active:
                rec.metrics.inc("engine.scheduling.groups",
                                engine=self.name)
        if plan.mode is ExecMode.VALIDATE:
            with rec.trace.span(
                "engine.validate.merge", cat="engine", track="engine",
                engine=self.name, blocks=len(completed),
            ):
                plan.kernel.merge_validation_outcomes(outcomes)
        tally.absorb_atomics(plan.atomics)
        if rec.metrics.active:
            rec.metrics.inc("engine.blocks.completed", len(completed),
                            engine=self.name)
        return completed, tally

    def _apply_group(
        self, plan: LaunchPlan, bctx: BatchBlockContext, tally: Tally
    ) -> None:
        """Apply a group's stores + table inserts, per block in order."""
        memory = plan.memory
        for row, block_id in enumerate(bctx.block_ids):
            for name, idx, vals, mask in bctx.store_records:
                row_idx = idx[row]
                row_vals = vals[row]
                if mask is not None:
                    keep = mask[row]
                    row_idx = row_idx[keep]
                    row_vals = row_vals[keep]
                if row_idx.size:
                    memory.write(memory[name], row_idx, row_vals)
            for lanes in bctx.table_inserts.get(int(block_id), ()):
                ctx = plan.block_context(int(block_id))
                plan.kernel.apply_table_insert(ctx, int(block_id), lanes)
                tally.merge(ctx.finalize_tally())


# ---------------------------------------------------------------------------
# Resolution
# ---------------------------------------------------------------------------

_DEFAULT_JOBS = max(1, min(4, os.cpu_count() or 1))


def make_engine(
    spec: LaunchEngine | str | None, jobs: int | None = None
) -> LaunchEngine:
    """Resolve an engine spec: instance, name, or ``None`` (serial).

    ``jobs`` applies to ``"parallel"`` (worker count, default
    ``min(4, cpu_count)``) and ``"batched"`` (group size, default 256).
    """
    if spec is None:
        return SerialEngine()
    if isinstance(spec, LaunchEngine):
        return spec
    if spec == "serial":
        return SerialEngine()
    if spec == "parallel":
        return ParallelEngine(jobs=jobs or _DEFAULT_JOBS)
    if spec == "batched":
        return BatchedEngine(**({"group_size": jobs} if jobs else {}))
    raise LaunchError(
        f"unknown launch engine {spec!r}; "
        "expected 'serial', 'parallel' or 'batched'"
    )
