"""Pluggable launch engines: how a launch's thread blocks get executed.

The paper's central observation is that LP regions (= thread blocks) are
*associative*: the GPU guarantees no inter-block ordering, so any
schedule that applies every block's effects exactly once is legal
(Section IV-A; Lin & Solihin make the same assumption for GPU
persistency models generally). The simulator exploits exactly that
property here. :class:`~repro.gpu.device.Device.launch` delegates the
block loop to a :class:`LaunchEngine`:

* :class:`SerialEngine` — the original one-block-at-a-time loop.
* :class:`ParallelEngine` — the zero-copy shared-memory engine. A
  *persistent* pool of forked workers shares the device's volatile
  image through a named POSIX shared-memory segment (see
  :mod:`repro.gpu.shm`): every buffer's ``data`` array is a view into
  one segment, so workers read inputs — and, between the launches of a
  recovery pipeline, each other's replayed results — with no
  copy-on-write duplication and no pickled arrays. Tasks travel to
  workers as compact block-group descriptors over pipes; results come
  back through a preallocated per-chunk *slot array* (status, payload
  length, busy time, the full cost tally) plus a per-chunk arena
  region carrying the variable-size payload in the
  :class:`~repro.gpu.shm.PayloadWriter` binary codec. Two worker-side
  execution shapes exist: the composed **vectorized chunk** path
  (``batchable`` kernels run whole chunks through one
  :class:`~repro.gpu.batch.BatchBlockContext`, the multiplicative fast
  path) and the block-granular op-log path for merely
  ``parallel_safe`` kernels. Either way the parent applies every
  chunk's deferred effects **in the launch's block order**, so cache
  recency, eviction order, NVM shadow state, write statistics,
  checksum tables and crash semantics are bit-identical to the serial
  engine. With one job (or a launch too small to farm out) the same
  vectorized chunks run inline, making ``parallel`` at worst the
  batched engine under a different chunking.
* :class:`BatchedEngine` — vectorizes *groups* of homogeneous blocks
  across an extra numpy axis in-process (see
  :class:`~repro.gpu.batch.BatchBlockContext`), for kernels whose
  ``run_block`` is already array-shaped. Store application and table
  insertion again happen per block in launch order.

Determinism contract (shared by all engines): given the same plan, an
engine must produce the same ``completed_blocks``, the same tally, the
same volatile + NVM memory images, the same write-back statistics and
the same checksum-table contents as :class:`SerialEngine`. The parity
test suite (``tests/gpu/test_engines.py``) pins this bit-for-bit.

The post-crash pipeline is engine-pluggable too: ``VALIDATE`` blocks
*return* per-block outcome records (recomputed checksum lanes) instead
of mutating host state, so any engine can run them concurrently and
then hand the collected records — in the launch's block order — to
:meth:`~repro.gpu.kernel.Kernel.merge_validation_outcomes` for one
deterministic grid-wide table compare. ``RECOVER`` re-execution batches
and parallelizes exactly like forward execution (table refreshes stay
deferred to launch-order application).

Engines *fall back to serial* whenever the contract cannot be kept
cheaply: kernels that opt out (``parallel_safe`` / ``batchable``),
degenerate launches, or platforms without ``fork``. A worker that dies
or raises mid-launch triggers *serial continuation*: already-replayed
chunks keep their effects and the remaining blocks re-run serially —
safe because workers never touch the persistence domain (stores
scribble the shared volatile image at most, and only for idempotent
kernels whose re-execution overwrites them deterministically).
"""

from __future__ import annotations

import abc
import dataclasses
import multiprocessing
import pickle
import time
import weakref
from dataclasses import dataclass
from multiprocessing import connection as mp_connection

import numpy as np

from repro.errors import LaunchError
from repro.gpu import shm
from repro.gpu.atomics import AtomicUnit
from repro.gpu.batch import BatchBlockContext
from repro.gpu.costs import Tally
from repro.gpu.kernel import BlockContext, ExecMode, Kernel, LaunchConfig
from repro.gpu.memory import GlobalMemory
from repro.obs import current as _recorder
from repro.obs import install as _install_recorder

#: Block-group granularity of serial/replay tracing spans: fine enough
#: to see progress, coarse enough that a 10k-block launch stays a
#: loadable timeline.
TRACE_GROUP_BLOCKS = 64


@dataclass
class LaunchPlan:
    """Everything an engine needs to execute one launch's blocks.

    ``block_ids`` is the final execution order, already shuffled and
    crash-truncated by the device; engines run exactly these blocks and
    nothing else.
    """

    kernel: Kernel
    config: LaunchConfig
    memory: GlobalMemory
    atomics: AtomicUnit
    mode: ExecMode
    block_ids: list[int]
    fence_latency: float = 660.0
    fence_concurrency: int = 1
    #: Optional callback fired with the cumulative completed-block
    #: count each time a block's effects land in the plan's memory
    #: (serial execution, parallel replay, batched application alike).
    #: The crash harness's "kill after N blocks" trigger point.
    block_hook: object | None = None

    def new_tally(self) -> Tally:
        """A zeroed launch-level tally with this plan's geometry."""
        return Tally(
            n_blocks=self.config.n_blocks,
            threads_per_block=self.config.threads_per_block,
        )

    def block_context(self, block_id: int,
                      mode: ExecMode | None = None) -> BlockContext:
        """A fresh context for one block of this launch."""
        return BlockContext(
            self.memory, self.atomics, self.config, block_id,
            self.mode if mode is None else mode,
            fence_latency_cycles=self.fence_latency,
            fence_concurrency=self.fence_concurrency,
        )


class LaunchEngine(abc.ABC):
    """Strategy for executing a launch plan's thread blocks."""

    #: Stable identifier used by :func:`make_engine` and reports.
    name: str = "engine"

    @abc.abstractmethod
    def execute(self, plan: LaunchPlan) -> tuple[list[int], Tally]:
        """Run every block in ``plan.block_ids``.

        Returns the completed block ids (in execution order) and the
        launch tally (atomic totals are filled in by the device
        afterwards, from the plan's :class:`AtomicUnit`).
        """


# ---------------------------------------------------------------------------
# Serial
# ---------------------------------------------------------------------------

class SerialEngine(LaunchEngine):
    """One block at a time — the reference semantics."""

    name = "serial"

    def execute(self, plan: LaunchPlan) -> tuple[list[int], Tally]:
        tally = plan.new_tally()
        completed: list[int] = []
        outcomes: list = []
        rec = _recorder()
        if rec.trace.enabled:
            # Per-block-group spans: chunked only when tracing, so the
            # default hot loop stays branch-free per block.
            ids = plan.block_ids
            for lo in range(0, len(ids), TRACE_GROUP_BLOCKS):
                group = ids[lo:lo + TRACE_GROUP_BLOCKS]
                with rec.trace.span(
                    "engine.blocks", cat="engine", track="engine",
                    engine=self.name, mode=plan.mode.name,
                    first=group[0], count=len(group),
                ):
                    self._run_blocks(plan, group, tally, completed,
                                     outcomes)
        else:
            self._run_blocks(plan, plan.block_ids, tally, completed,
                             outcomes)
        if plan.mode is ExecMode.VALIDATE:
            with rec.trace.span(
                "engine.validate.merge", cat="engine", track="engine",
                engine=self.name, blocks=len(completed),
            ):
                plan.kernel.merge_validation_outcomes(outcomes)
        tally.absorb_atomics(plan.atomics)
        if rec.metrics.active:
            rec.metrics.inc("engine.blocks.completed", len(completed),
                            engine=self.name)
        return completed, tally

    def _run_blocks(self, plan: LaunchPlan, block_ids: list[int],
                    tally: Tally, completed: list[int],
                    outcomes: list) -> None:
        kernel = plan.kernel
        for block_id in block_ids:
            ctx = plan.block_context(block_id)
            if plan.mode is ExecMode.VALIDATE:
                outcomes.append(kernel.validate_block(ctx))
            elif plan.mode is ExecMode.RECOVER:
                kernel.recover_block(ctx)
            else:
                kernel.run_block(ctx)
            tally.merge(ctx.finalize_tally())
            completed.append(block_id)
            if plan.block_hook is not None:
                plan.block_hook(len(completed))


# ---------------------------------------------------------------------------
# Shared vectorized-group machinery (batched engine + parallel chunks)
# ---------------------------------------------------------------------------

def _apply_batch_records(plan: LaunchPlan, block_ids, store_records,
                         table_inserts, tally: Tally,
                         completed: list[int]) -> None:
    """Apply a vectorized group's deferred effects, per block in order.

    ``store_records``/``table_inserts`` follow the
    :class:`BatchBlockContext` shapes (leading store axis = block;
    insert lanes keyed by block id). Used identically for groups
    executed in-process and for groups decoded from a worker payload.
    """
    memory = plan.memory
    for row, block_id in enumerate(block_ids):
        bid = int(block_id)
        for name, idx, vals, mask in store_records:
            row_idx = idx[row]
            row_vals = vals[row]
            if mask is not None:
                keep = mask[row]
                row_idx = row_idx[keep]
                row_vals = row_vals[keep]
            if row_idx.size:
                memory.write(memory[name], row_idx, row_vals)
        for lanes in table_inserts.get(bid, ()):
            ctx = plan.block_context(bid)
            plan.kernel.apply_table_insert(ctx, bid, lanes)
            tally.merge(ctx.finalize_tally())
    completed.extend(int(b) for b in block_ids)
    if plan.block_hook is not None:
        for n in range(len(completed) - len(block_ids) + 1,
                       len(completed) + 1):
            plan.block_hook(n)


def _run_batch_group(plan: LaunchPlan, group, tally: Tally,
                     completed: list[int], outcomes: list) -> None:
    """Execute one vectorized block group in-process and apply it."""
    bctx = BatchBlockContext(
        plan.memory, plan.config, group, mode=plan.mode,
        fence_latency_cycles=plan.fence_latency,
        fence_concurrency=plan.fence_concurrency,
    )
    if plan.mode is ExecMode.VALIDATE:
        outcomes.extend(plan.kernel.validate_block_batch(bctx))
    elif plan.mode is ExecMode.RECOVER:
        plan.kernel.recover_block_batch(bctx)
    else:
        plan.kernel.run_block_batch(bctx)
    tally.merge(bctx.finalize_tally())
    _apply_batch_records(plan, group, bctx.store_records,
                         bctx.table_inserts, tally, completed)


# ---------------------------------------------------------------------------
# Worker-side block recording (op-log path)
# ---------------------------------------------------------------------------

#: Op codes of the block-granular worker log (codec framing).
_OP_ST = 0
_OP_ATOMIC_ADD = 1
_OP_ATOMIC_MAX = 2
_OP_TABLE = 3


class RecordingBlockContext(BlockContext):
    """A block context that logs externally visible effects for replay.

    Runs inside a pool worker against the *shared* device image:
    ordinary stores apply locally (so the block observes its own
    writes, exactly as under serial execution — the shared image makes
    this a scribble the parent's deterministic replay later overwrites
    with the same values) and are appended to the op log. Atomics are
    **log-only**: applying them worker-side into the shared image and
    again during parent replay would double-apply, so only the traffic
    charge lands here and the single application happens in the parent
    (``atomic_add``/``atomic_max`` return nothing, so no kernel can
    observe the difference). Reads are not logged — a
    ``parallel_safe`` kernel's loads depend only on pre-launch state
    and the block's own stores.

    Operations whose *result* depends on other blocks' progress
    (``atomic_cas`` / ``atomic_exch``) or on cache state shared across
    blocks (``clwb``) cannot be replayed from a log and raise; kernels
    using them must set ``parallel_safe = False``.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.ops: list = []
        self.table_insert_deferral = self._defer_table_insert

    def _defer_table_insert(self, key: int, lanes: np.ndarray) -> None:
        self.ops.append((_OP_TABLE, int(key), np.array(lanes, copy=True)))

    def st(self, buf, idx, values, slots=None):
        buf = self.buffer(buf)
        idx_arr = np.atleast_1d(np.asarray(idx))
        vals = np.array(
            np.broadcast_to(np.asarray(values, dtype=buf.dtype),
                            idx_arr.shape)
        )
        # VALIDATE-mode persistent stores are suppressed by the base
        # context (memory contents feed the observer instead); logging
        # them would wrongly apply them during parent replay.
        if not (self.mode is ExecMode.VALIDATE and buf.persistent):
            self.ops.append((_OP_ST, buf.name, idx_arr.copy(), vals))
        super().st(buf, idx_arr, vals, slots=slots)

    def _log_atomic(self, code: int, buf, idx, values):
        buf = self.buffer(buf)
        self._guard_persistent_atomic(buf)
        idx_arr = np.atleast_1d(np.asarray(idx))
        vals = np.array(np.asarray(values), copy=True)
        self.ops.append((code, buf.name, idx_arr.copy(), vals))
        # Traffic is charged here (it is per-issue, like the base
        # context); the contention accounting happens in the parent,
        # against the launch's real AtomicUnit, during replay.
        self.tally.global_write_bytes += idx_arr.size * buf.dtype.itemsize

    def atomic_add(self, buf, idx, values):
        self._log_atomic(_OP_ATOMIC_ADD, buf, idx, values)

    def atomic_max(self, buf, idx, values):
        self._log_atomic(_OP_ATOMIC_MAX, buf, idx, values)

    def atomic_cas(self, buf, index, compare, value):
        raise LaunchError(
            "atomic_cas result depends on other blocks and cannot be "
            "replayed from a log; mark the kernel parallel_safe = False "
            "(lplint rule LP005 flags this before launch: "
            "python -m repro lint builtin)"
        )

    def atomic_exch(self, buf, index, value):
        raise LaunchError(
            "atomic_exch result depends on other blocks and cannot be "
            "replayed from a log; mark the kernel parallel_safe = False "
            "(lplint rule LP005 flags this before launch: "
            "python -m repro lint builtin)"
        )

    def clwb(self, buf, idx):
        raise LaunchError(
            "clwb flush counts depend on shared cache state and cannot "
            "be replayed from a log; mark the kernel parallel_safe = False "
            "(lplint rule LP005 flags this before launch: "
            "python -m repro lint builtin)"
        )


# ---------------------------------------------------------------------------
# Chunk payload codec (worker → parent, no pickle on the data path)
# ---------------------------------------------------------------------------

def _encode_outcomes(w: shm.PayloadWriter, outcomes) -> None:
    if outcomes is None:
        w.u8(0)
        return
    w.u8(1)
    w.u32(len(outcomes))
    for outcome in outcomes:
        if outcome is None:
            w.u8(0)
        elif (isinstance(outcome, tuple) and len(outcome) == 2
              and isinstance(outcome[0], (int, np.integer))
              and isinstance(outcome[1], np.ndarray)):
            # The LP wrapper's (block_id, lanes) record — the hot shape.
            w.u8(1)
            w.i64(int(outcome[0]))
            w.array(outcome[1])
        else:  # pragma: no cover - exotic kernel-defined records
            w.u8(2)
            w.bytes_(pickle.dumps(outcome))


def _decode_outcomes(r: shm.PayloadReader):
    if not r.u8():
        return None
    outcomes = []
    for _ in range(r.u32()):
        tag = r.u8()
        if tag == 0:
            outcomes.append(None)
        elif tag == 1:
            block_id = r.i64()
            outcomes.append((block_id, r.array()))
        else:  # pragma: no cover - exotic kernel-defined records
            outcomes.append(pickle.loads(r.bytes_()))
    return outcomes


def _encode_batch_chunk(bctx: BatchBlockContext, outcomes) -> bytes:
    """Serialize a vectorized chunk's deferred effects."""
    w = shm.PayloadWriter()
    w.u32(len(bctx.store_records))
    for name, idx, vals, mask in bctx.store_records:
        w.str_(name)
        w.array(idx)
        w.array(vals)
        w.optional_array(mask)
    w.u32(len(bctx.table_inserts))
    for block_id, lane_list in bctx.table_inserts.items():
        w.i64(int(block_id))
        w.u32(len(lane_list))
        for lanes in lane_list:
            w.array(lanes)
    _encode_outcomes(w, outcomes)
    return w.getvalue()


def _decode_batch_chunk(buf):
    r = shm.PayloadReader(buf)
    store_records = []
    for _ in range(r.u32()):
        name = r.str_()
        idx = r.array()
        vals = r.array()
        mask = r.optional_array()
        store_records.append((name, idx, vals, mask))
    table_inserts: dict[int, list[np.ndarray]] = {}
    for _ in range(r.u32()):
        block_id = r.i64()
        table_inserts[block_id] = [r.array() for _ in range(r.u32())]
    return store_records, table_inserts, _decode_outcomes(r)


def _encode_block_chunk(blocks_ops: list, outcomes) -> bytes:
    """Serialize a block-granular chunk's op logs."""
    w = shm.PayloadWriter()
    w.u32(len(blocks_ops))
    for ops in blocks_ops:
        w.u32(len(ops))
        for op in ops:
            w.u8(op[0])
            if op[0] == _OP_TABLE:
                w.i64(op[1])
                w.array(op[2])
            else:
                w.str_(op[1])
                w.array(op[2])
                w.array(op[3])
    _encode_outcomes(w, outcomes)
    return w.getvalue()


def _decode_block_chunk(buf):
    r = shm.PayloadReader(buf)
    blocks_ops = []
    for _ in range(r.u32()):
        ops = []
        for _ in range(r.u32()):
            code = r.u8()
            if code == _OP_TABLE:
                ops.append((code, r.i64(), r.array()))
            else:
                ops.append((code, r.str_(), r.array(), r.array()))
        blocks_ops.append(ops)
    return blocks_ops, _decode_outcomes(r)


# ---------------------------------------------------------------------------
# Slot array layout (one record per chunk, shared with workers)
# ---------------------------------------------------------------------------

_TALLY_FIELDS = tuple(f.name for f in dataclasses.fields(Tally))
_SLOT_STATUS = 0
_SLOT_PAYLOAD_LEN = 1
_SLOT_BUSY_NS = 2
_SLOT_TALLY0 = 3
_SLOT_F64 = _SLOT_TALLY0 + len(_TALLY_FIELDS)
_STATUS_DONE = 1.0

#: Fixed arena region per chunk slot; payloads that outgrow it ride the
#: worker's done-message instead (rare, and still codec bytes).
ARENA_SLOT_BYTES = 1 << 20

#: Chunks per worker per launch — a little headroom for load balance.
_CHUNKS_PER_JOB = 4


def _tally_to_slot(slot: np.ndarray, tally: Tally) -> None:
    for i, name in enumerate(_TALLY_FIELDS):
        slot[_SLOT_TALLY0 + i] = float(getattr(tally, name))


def _tally_from_slot(slot: np.ndarray) -> Tally:
    tally = Tally()
    for i, name in enumerate(_TALLY_FIELDS):
        value = float(slot[_SLOT_TALLY0 + i])
        # The first two fields are launch geometry and integer-typed;
        # the rest accumulate as floats exactly like the serial tally.
        if name in ("n_blocks", "threads_per_block"):
            setattr(tally, name, int(value))
        else:
            setattr(tally, name, value)
    return tally


# ---------------------------------------------------------------------------
# Persistent worker pool
# ---------------------------------------------------------------------------

class _PoolBroken(Exception):
    """A worker died or raised; the launch must continue serially."""


def _run_chunk_in_worker(pool: "_WorkerPool", ids: list[int],
                         mode: ExecMode, vectorized: bool,
                         fence_latency: float,
                         fence_concurrency: int) -> tuple[bytes, Tally]:
    kernel, config, memory = pool.kernel, pool.config, pool.memory
    if vectorized:
        bctx = BatchBlockContext(
            memory, config, ids, mode=mode,
            fence_latency_cycles=fence_latency,
            fence_concurrency=fence_concurrency,
        )
        outcomes = None
        if mode is ExecMode.VALIDATE:
            outcomes = kernel.validate_block_batch(bctx)
        elif mode is ExecMode.RECOVER:
            kernel.recover_block_batch(bctx)
        else:
            kernel.run_block_batch(bctx)
        tally = bctx.finalize_tally()
        return _encode_batch_chunk(bctx, outcomes), tally

    # Block-granular op-log path. The private AtomicUnit is only a
    # constructor requirement — recording contexts never apply atomics.
    atomics = AtomicUnit(memory)
    tally = Tally()
    blocks_ops: list = []
    outcomes = [] if mode is ExecMode.VALIDATE else None
    for block_id in ids:
        ctx = RecordingBlockContext(
            memory, atomics, config, block_id, mode,
            fence_latency_cycles=fence_latency,
            fence_concurrency=fence_concurrency,
        )
        if mode is ExecMode.VALIDATE:
            outcomes.append(kernel.validate_block(ctx))
        elif mode is ExecMode.RECOVER:
            kernel.recover_block(ctx)
        else:
            kernel.run_block(ctx)
        tally.merge(ctx.finalize_tally())
        blocks_ops.append(ctx.ops)
    return _encode_block_chunk(blocks_ops, outcomes), tally


def _worker_main(pool: "_WorkerPool", conn, worker_index: int) -> None:
    """Pool worker loop: inherited state in, slot records + payloads out."""
    # The forked child inherits the parent's recorder and segment
    # registry; neither may act here. Observability belongs to the
    # parent, and segment ownership (unlink rights) stays with the
    # creating pid.
    _install_recorder(None)
    shm.disown_all()
    pool.memory.enter_worker_mode()
    arena = pool.arena_seg.ndarray(
        np.uint8, (pool.capacity, ARENA_SLOT_BYTES))
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "stop":
            break
        (_, seq, chunk_index, mode_value, ids, vectorized,
         fence_latency, fence_concurrency, _shard) = msg
        t0 = time.perf_counter_ns()
        try:
            payload, tally = _run_chunk_in_worker(
                pool, list(ids), ExecMode(mode_value), vectorized,
                fence_latency, fence_concurrency,
            )
        except LaunchError as exc:
            conn.send(("err", seq, chunk_index, str(exc)))
            continue
        busy_ns = time.perf_counter_ns() - t0
        slot = pool.slots[chunk_index]
        slot[_SLOT_PAYLOAD_LEN] = len(payload)
        slot[_SLOT_BUSY_NS] = busy_ns
        _tally_to_slot(slot, tally)
        if len(payload) <= ARENA_SLOT_BYTES:
            arena[chunk_index, :len(payload)] = np.frombuffer(
                payload, dtype=np.uint8)
            inline = None
        else:
            inline = payload
        slot[_SLOT_STATUS] = _STATUS_DONE
        conn.send(("done", seq, chunk_index, inline))
    conn.close()


def _release_pool_resources(procs, conns, segments,
                            memory: GlobalMemory) -> None:
    """Tear a pool down: stop workers, reclaim the image, unlink SHM."""
    for conn in conns:
        try:
            conn.send(("stop",))
        except (OSError, ValueError, BrokenPipeError):
            pass
    for proc in procs:
        proc.join(timeout=2.0)
        if proc.is_alive():  # pragma: no cover - wedged worker
            proc.terminate()
            proc.join(timeout=2.0)
    for conn in conns:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
    # Re-point every buffer at private arrays *before* the segments go
    # away, so the memory outlives its pool.
    memory.materialize_data()
    for seg in segments:
        seg.destroy()


class _WorkerPool:
    """A persistent forked worker pool sharing one device image.

    Created lazily by :class:`ParallelEngine` on the first launch that
    can use it and kept across launches (the recovery pipeline's
    NORMAL → VALIDATE → RECOVER sequence reuses one pool; only an
    allocation-epoch change or a different kernel/memory re-forks).
    All segments are created by the parent *before* the fork, so
    workers inherit the mappings and never create segments of their
    own — worker death can leak nothing.
    """

    def __init__(self, jobs: int, kernel: Kernel, config: LaunchConfig,
                 memory: GlobalMemory) -> None:
        self.jobs = jobs
        self.kernel = kernel
        self.config = config
        self.memory = memory
        self.version = memory.version
        self.capacity = jobs * _CHUNKS_PER_JOB
        self.broken = False
        # Opportunistic janitor pass: segments abandoned by SIGKILLed
        # processes (harness children) are reaped before we allocate.
        shm.reap_orphans()
        self.image_seg = shm.SharedSegment.create(
            "img", max(1, memory.image_nbytes))
        memory.export_data_image(self.image_seg.buf)
        self.slot_seg = shm.SharedSegment.create(
            "slots", self.capacity * _SLOT_F64 * 8)
        self.slots = self.slot_seg.ndarray(
            np.float64, (self.capacity, _SLOT_F64))
        self.arena_seg = shm.SharedSegment.create(
            "arena", self.capacity * ARENA_SLOT_BYTES)
        self.arena = self.arena_seg.ndarray(
            np.uint8, (self.capacity, ARENA_SLOT_BYTES))
        self.bytes_shared = (self.image_seg.nbytes + self.slot_seg.nbytes
                             + self.arena_seg.nbytes)
        self._seq = 0
        ctx = multiprocessing.get_context("fork")
        self.workers = []
        for index in range(jobs):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main, args=(self, child_conn, index),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self.workers.append((proc, parent_conn))
        self._worker_of = {conn: i
                           for i, (_, conn) in enumerate(self.workers)}
        self._outstanding = 0
        #: Most tasks simultaneously in flight during the last launch —
        #: the pool's high-water queue depth.
        self.peak_outstanding = 0
        self._finalizer = weakref.finalize(
            self, _release_pool_resources,
            [proc for proc, _ in self.workers],
            [conn for _, conn in self.workers],
            (self.image_seg, self.slot_seg, self.arena_seg),
            memory,
        )

    def compatible(self, plan: LaunchPlan) -> bool:
        """Whether this pool's forked snapshot still matches ``plan``."""
        return (
            not self.broken
            and self.kernel is plan.kernel
            and self.memory is plan.memory
            and self.config == plan.config
            and self.version == plan.memory.version
        )

    def close(self) -> None:
        """Stop workers, reclaim the device image, unlink segments."""
        self._finalizer()

    # -- launch driving --------------------------------------------------

    def _send_task(self, worker: int, seq: int, chunk_index: int,
                   plan: LaunchPlan, ids, vectorized: bool,
                   shard: int = -1) -> None:
        # ``shard`` is the chunk's NVM shard affinity (-1 when the
        # memory's shadow backend is unsharded) — carried in the task
        # descriptor so the dispatcher and the worker agree on which
        # persistence domain a chunk's write-backs will target.
        _, conn = self.workers[worker]
        conn.send((
            "task", seq, chunk_index, plan.mode.value,
            tuple(int(b) for b in ids), vectorized,
            plan.fence_latency, plan.fence_concurrency, shard,
        ))
        self._outstanding += 1
        if self._outstanding > self.peak_outstanding:
            self.peak_outstanding = self._outstanding

    def _drain_stale(self) -> None:
        """Absorb responses left over from an abandoned launch."""
        conns = [conn for _, conn in self.workers]
        while self._outstanding > 0:
            for conn in mp_connection.wait(conns):
                try:
                    conn.recv()
                except (EOFError, OSError):
                    self.broken = True
                    raise _PoolBroken("pool worker died") from None
                self._outstanding -= 1

    def iter_chunk_results(self, plan: LaunchPlan, chunks: list,
                           vectorized: bool, chunk_shards=None):
        """Yield ``(chunk_index, payload, slot_copy)`` in chunk order.

        Chunks are dispatched dynamically (each worker gets a new chunk
        as it finishes its last) while results are surfaced strictly in
        submission order — chunks are contiguous slices of the launch's
        block order, so in-order consumption *is* launch-order replay
        regardless of dispatch order. When ``chunk_shards`` is given
        (per-chunk NVM shard affinity from a sharded shadow backend),
        each worker *prefers* chunks whose shard maps to it, keeping a
        worker's validate/recover stream shard-local; the preference
        never changes which chunks run, only where. Raises
        :class:`_PoolBroken` on worker death or a worker-side
        :class:`~repro.errors.LaunchError`.
        """
        n = len(chunks)
        if n > self.capacity:  # pragma: no cover - chunker invariant
            raise LaunchError(
                f"{n} chunks exceed pool slot capacity {self.capacity}")
        for proc, _ in self.workers:
            if not proc.is_alive():
                self.broken = True
                raise _PoolBroken(f"pool worker pid {proc.pid} is gone")
        self._drain_stale()
        self._seq += 1
        seq = self._seq
        self.peak_outstanding = 0
        self.slots[:n] = 0.0
        pending = list(range(n))

        def dispatch(worker: int) -> None:
            pick = 0
            if chunk_shards is not None:
                for pos, chunk_index in enumerate(pending):
                    if chunk_shards[chunk_index] % self.jobs == worker:
                        pick = pos
                        break
            chunk_index = pending.pop(pick)
            shard = -1 if chunk_shards is None else \
                int(chunk_shards[chunk_index])
            self._send_task(worker, seq, chunk_index, plan,
                            chunks[chunk_index], vectorized, shard)

        delivered = 0
        ready: dict[int, bytes] = {}
        for worker in range(min(self.jobs, n)):
            dispatch(worker)
        conns = [conn for _, conn in self.workers]
        while delivered < n:
            if delivered in ready:
                payload = ready.pop(delivered)
                yield delivered, payload, np.array(self.slots[delivered])
                delivered += 1
                continue
            for conn in mp_connection.wait(conns):
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    self.broken = True
                    raise _PoolBroken("pool worker died") from None
                self._outstanding -= 1
                kind = msg[0]
                if msg[1] != seq:  # pragma: no cover - abandoned launch
                    continue
                if kind == "err":
                    self.broken = True
                    raise _PoolBroken(
                        f"worker chunk failed: {msg[3]}")
                chunk_index = msg[2]
                inline = msg[3]
                if inline is not None:
                    ready[chunk_index] = inline
                else:
                    plen = int(self.slots[chunk_index, _SLOT_PAYLOAD_LEN])
                    ready[chunk_index] = \
                        self.arena[chunk_index, :plen].tobytes()
                if pending:
                    dispatch(self._worker_of[conn])


# ---------------------------------------------------------------------------
# Parallel (persistent shared-memory pool + deterministic replay)
# ---------------------------------------------------------------------------

class ParallelEngine(LaunchEngine):
    """Zero-copy shared-memory parallel execution with in-order replay.

    The engine owns at most one :class:`_WorkerPool` at a time,
    attached lazily on the first pool-worthy launch and kept until the
    kernel, memory identity or allocation epoch changes (or
    :meth:`close` runs). Workers share the device's volatile image
    through a named segment and return per-chunk results through the
    slot array + arena — no pickled arrays in either direction.

    Execution shape per launch:

    * ``batchable`` kernels run **vectorized chunks** — each worker
      executes a contiguous chunk through one
      :class:`~repro.gpu.batch.BatchBlockContext` and ships the
      deferred stores/table inserts back for in-order application (the
      composed parallel(batched) fast path). With ``jobs=1``, no fork
      or a too-small launch, the same chunks run inline in-process.
    * ``parallel_safe`` (but unbatchable) kernels run block-granular
      chunks under :class:`RecordingBlockContext`, shipping op logs.
      This path additionally requires ``idempotent`` kernels: workers
      scribble the shared volatile image, and the serial-continuation
      fallback after a worker failure re-executes scribbled blocks.
    * Everything else (and every failure) falls back to
      :class:`SerialEngine` semantics — mid-launch failures continue
      serially from the first unreplayed chunk, keeping effects
      exactly-once.

    ``VALIDATE`` and ``RECOVER`` launches ride the same paths, so
    post-crash validation parallelizes identically to forward
    execution.
    """

    name = "parallel"

    def __init__(self, jobs: int | None = None) -> None:
        if jobs is None:
            jobs = shm.cpu_budget()
        if jobs < 1:
            raise LaunchError(f"ParallelEngine needs jobs >= 1, got {jobs}")
        self.jobs = jobs
        self._serial = SerialEngine()
        self._pool: _WorkerPool | None = None

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Detach: stop pool workers and unlink every shared segment."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_pool(self, plan: LaunchPlan) -> _WorkerPool:
        if self._pool is not None and not self._pool.compatible(plan):
            self.close()
        if self._pool is None:
            rec = _recorder()
            with rec.trace.span(
                "engine.shm.attach", cat="engine", track="engine",
                engine=self.name, jobs=self.jobs,
            ):
                self._pool = _WorkerPool(
                    self.jobs, plan.kernel, plan.config, plan.memory)
            if rec.metrics.active:
                rec.metrics.set_gauge(
                    "engine.shm.bytes_shared", self._pool.bytes_shared,
                    engine=self.name,
                )
        return self._pool

    # -- execution -------------------------------------------------------

    def execute(self, plan: LaunchPlan) -> tuple[list[int], Tally]:
        vectorized = bool(plan.kernel.batchable)
        use_pool = (
            self.jobs > 1
            and plan.kernel.parallel_safe
            and (vectorized or plan.kernel.idempotent)
            and len(plan.block_ids) >= 2 * self.jobs
            and "fork" in multiprocessing.get_all_start_methods()
        )
        if not use_pool and not vectorized:
            return self._serial.execute(plan)

        tally = plan.new_tally()
        completed: list[int] = []
        outcomes: list = []
        rec = _recorder()
        chunks = self._chunk(plan.block_ids)
        if use_pool:
            self._execute_pooled(plan, chunks, vectorized, tally,
                                 completed, outcomes, rec)
        else:
            for group in chunks:
                with rec.trace.span(
                    "engine.group", cat="engine", track="engine",
                    engine=self.name, mode=plan.mode.name,
                    first=group[0], count=len(group),
                ):
                    _run_batch_group(plan, group, tally, completed,
                                     outcomes)
        if plan.mode is ExecMode.VALIDATE:
            with rec.trace.span(
                "engine.validate.merge", cat="engine", track="engine",
                engine=self.name, blocks=len(completed),
            ):
                plan.kernel.merge_validation_outcomes(outcomes)
        tally.absorb_atomics(plan.atomics)
        if rec.metrics.active:
            rec.metrics.inc("engine.blocks.completed", len(completed),
                            engine=self.name)
        return completed, tally

    def _chunk(self, block_ids: list[int]) -> list[list[int]]:
        """Contiguous chunks, a few per worker for load balance."""
        n = len(block_ids)
        if n == 0:
            return []
        n_chunks = min(n, self.jobs * _CHUNKS_PER_JOB)
        size = -(-n // n_chunks)
        return [block_ids[i:i + size] for i in range(0, n, size)]

    def _execute_pooled(self, plan: LaunchPlan, chunks: list,
                        vectorized: bool, tally: Tally,
                        completed: list[int], outcomes: list,
                        rec) -> None:
        pool = self._ensure_pool(plan)
        # Per-chunk NVM shard affinity: when the memory persists into a
        # sharded heap, tag each chunk with the shard its first block
        # maps to so workers keep their streams shard-local. Chunks are
        # contiguous block-id slices either way — affinity is purely a
        # dispatch preference and cannot change results.
        shard_of_block = getattr(
            getattr(plan.memory, "shadow_backend", None),
            "shard_of_block", None)
        chunk_shards = (
            [shard_of_block(chunk[0]) for chunk in chunks]
            if callable(shard_of_block) else None
        )
        if rec.metrics.active:
            rec.metrics.inc("engine.scheduling.chunks", len(chunks),
                            engine=self.name)
            if chunk_shards is not None:
                rec.metrics.inc("engine.scheduling.shard_affine",
                                len(chunks), engine=self.name)
        replayed = 0
        busy_ns = 0.0
        merge_ns = 0
        t0 = time.perf_counter_ns()
        try:
            with rec.trace.span(
                "engine.workers", cat="engine", track="engine",
                engine=self.name, jobs=self.jobs, chunks=len(chunks),
                vectorized=vectorized,
            ):
                for chunk_index, payload, slot in pool.iter_chunk_results(
                        plan, chunks, vectorized, chunk_shards):
                    group = chunks[chunk_index]
                    m0 = time.perf_counter_ns()
                    busy_ns += slot[_SLOT_BUSY_NS]
                    tally.merge(_tally_from_slot(slot))
                    with rec.trace.span(
                        "engine.replay", cat="engine", track="engine",
                        engine=self.name, first=group[0],
                        count=len(group),
                    ):
                        if vectorized:
                            stores, inserts, outs = \
                                _decode_batch_chunk(payload)
                            _apply_batch_records(
                                plan, group, stores, inserts, tally,
                                completed)
                        else:
                            blocks_ops, outs = _decode_block_chunk(payload)
                            self._replay_block_ops(
                                plan, group, blocks_ops, tally, completed)
                    if outs is not None:
                        outcomes.extend(outs)
                    if rec.metrics.active:
                        # live depth: dispatched-but-unmerged chunks, so
                        # a telemetry sampler sees mid-launch pressure
                        rec.metrics.set_gauge(
                            "engine.shm.queue_depth", pool._outstanding,
                            engine=self.name,
                        )
                    merge_ns += time.perf_counter_ns() - m0
                    replayed += 1
        except _PoolBroken:
            # Exactly-once continuation: replayed chunks keep their
            # effects; everything from the first unreplayed chunk on
            # re-runs serially (worker-side scribbles are overwritten
            # by the deterministic re-execution).
            self.close()
            remaining = [b for chunk in chunks[replayed:] for b in chunk]
            with rec.trace.span(
                "engine.serial_continuation", cat="engine",
                track="engine", engine=self.name, blocks=len(remaining),
            ):
                self._serial._run_blocks(plan, remaining, tally,
                                         completed, outcomes)
            return
        wall_ns = time.perf_counter_ns() - t0
        if rec.metrics.active:
            rec.metrics.inc("engine.slots.merge_ns", merge_ns,
                            engine=self.name)
            rec.metrics.set_gauge(
                "engine.shm.queue_depth_peak", pool.peak_outstanding,
                engine=self.name,
            )
            if wall_ns > 0:
                rec.metrics.set_gauge(
                    "engine.shm.worker_busy_frac",
                    busy_ns / (wall_ns * self.jobs), engine=self.name,
                )

    def _replay_block_ops(self, plan: LaunchPlan, block_ids,
                          blocks_ops: list, tally: Tally,
                          completed: list[int]) -> None:
        memory = plan.memory
        for block_id, block_ops in zip(block_ids, blocks_ops):
            for op in block_ops:
                code = op[0]
                if code == _OP_ST:
                    memory.write(memory[op[1]], op[2], op[3])
                elif code == _OP_ATOMIC_ADD:
                    plan.atomics.add(memory[op[1]], op[2], op[3])
                elif code == _OP_ATOMIC_MAX:
                    plan.atomics.max_(memory[op[1]], op[2], op[3])
                elif code == _OP_TABLE:
                    ctx = plan.block_context(block_id)
                    plan.kernel.apply_table_insert(ctx, op[1], op[2])
                    tally.merge(ctx.finalize_tally())
                else:  # pragma: no cover - defensive
                    raise LaunchError(f"unknown replay op {code!r}")
            completed.append(block_id)
            if plan.block_hook is not None:
                plan.block_hook(len(completed))


# ---------------------------------------------------------------------------
# Batched (vectorized groups, in-process)
# ---------------------------------------------------------------------------

class BatchedEngine(LaunchEngine):
    """Vectorize groups of homogeneous blocks across a numpy axis.

    The engine hands the kernel a
    :class:`~repro.gpu.batch.BatchBlockContext` covering up to
    ``group_size`` blocks; the kernel's ``run_block_batch`` computes
    every block's loads, stores and charges in whole-group array
    operations. Stores (and deferred table insertions) are then applied
    per block in launch order, so the persistence domain sees exactly
    the serial engine's write sequence.

    Requirements on batchable kernels (``batchable = True``): blocks
    must not read locations written during the same launch (the
    block-disjoint-output property LP regions have anyway), and any LP
    wrapper needs commutative checksum lanes. Falls back to
    :class:`SerialEngine` otherwise.

    ``VALIDATE`` launches run the vectorized re-validation fast path:
    each group recomputes every block's checksum lanes in one batched
    pass (``validate_block_batch``), and the collected outcome records
    merge through one grid-wide vectorized table compare. ``RECOVER``
    launches re-execute failed blocks in groups through
    ``recover_block_batch``, with refreshed checksums applied per block
    in launch order like any forward insert.
    """

    name = "batched"

    def __init__(self, group_size: int = 256) -> None:
        if group_size < 1:
            raise LaunchError(
                f"BatchedEngine needs group_size >= 1, got {group_size}"
            )
        self.group_size = group_size
        self._serial = SerialEngine()

    def execute(self, plan: LaunchPlan) -> tuple[list[int], Tally]:
        if not plan.kernel.batchable:
            return self._serial.execute(plan)

        tally = plan.new_tally()
        completed: list[int] = []
        outcomes: list = []
        rec = _recorder()
        ids = plan.block_ids
        for lo in range(0, len(ids), self.group_size):
            group = ids[lo:lo + self.group_size]
            with rec.trace.span(
                "engine.group", cat="engine", track="engine",
                engine=self.name, mode=plan.mode.name,
                first=group[0], count=len(group),
            ):
                _run_batch_group(plan, group, tally, completed, outcomes)
            if rec.metrics.active:
                rec.metrics.inc("engine.scheduling.groups",
                                engine=self.name)
        if plan.mode is ExecMode.VALIDATE:
            with rec.trace.span(
                "engine.validate.merge", cat="engine", track="engine",
                engine=self.name, blocks=len(completed),
            ):
                plan.kernel.merge_validation_outcomes(outcomes)
        tally.absorb_atomics(plan.atomics)
        if rec.metrics.active:
            rec.metrics.inc("engine.blocks.completed", len(completed),
                            engine=self.name)
        return completed, tally


# ---------------------------------------------------------------------------
# Resolution
# ---------------------------------------------------------------------------

def make_engine(
    spec: LaunchEngine | str | None, jobs: int | None = None
) -> LaunchEngine:
    """Resolve an engine spec: instance, name, or ``None`` (serial).

    ``jobs`` applies to ``"parallel"`` (worker count; ``None`` means
    the container-aware :func:`repro.gpu.shm.cpu_budget`) and
    ``"batched"`` (group size, default 256).
    """
    if spec is None:
        return SerialEngine()
    if isinstance(spec, LaunchEngine):
        return spec
    if spec == "serial":
        return SerialEngine()
    if spec == "parallel":
        return ParallelEngine(jobs=jobs or None)
    if spec == "batched":
        return BatchedEngine(**({"group_size": jobs} if jobs else {}))
    raise LaunchError(
        f"unknown launch engine {spec!r}; "
        "expected 'serial', 'parallel' or 'batched'"
    )
