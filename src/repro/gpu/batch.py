"""Vectorized execution context for a *group* of thread blocks.

:class:`BatchBlockContext` is the batched counterpart of
:class:`~repro.gpu.kernel.BlockContext`: one extra leading numpy axis
indexes the thread block within the group, so a kernel whose
``run_block`` is already array-shaped across threads can compute an
entire group of blocks in a handful of whole-array operations instead
of one Python call chain per block.

Semantics contract (what lets the batched engine stay bit-identical to
serial execution):

* **Loads** read device memory directly. A batchable kernel must not
  load locations written during the same launch — the block-disjoint
  output property LP regions require anyway — so every block observes
  exactly the pre-launch image it would observe under any serial order.
* **Stores are deferred.** ``st`` records the store (and folds it into
  the attached LP observer, charging checksum work) but does not touch
  memory; the engine applies the recorded rows per block, in launch
  order, through :meth:`~repro.gpu.memory.GlobalMemory.write`. Cache
  recency, evictions and NVM write statistics therefore match the
  serial engine exactly.
* **Charges are totals.** ``flops``/``alu`` charge whole-group counts;
  all tally fields are integer-valued, so grouped summation is exact
  and the final tally is bit-identical to per-block accumulation.

``mask`` arguments silence the trailing ragged rows of a partial block
(a grid whose last block covers fewer requests), both for accounting
and for store application.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LaunchError
from repro.gpu.costs import Tally
from repro.gpu.kernel import ExecMode, LaunchConfig
from repro.gpu.memory import Buffer, GlobalMemory


class BatchBlockContext:
    """Execution context covering a group of blocks at once."""

    def __init__(
        self,
        memory: GlobalMemory,
        config: LaunchConfig,
        block_ids,
        mode: ExecMode = ExecMode.NORMAL,
        fence_latency_cycles: float = 660.0,
        fence_concurrency: int = 1,
    ) -> None:
        self.memory = memory
        self.config = config
        self.mode = mode
        self.block_ids = np.asarray(list(block_ids), dtype=np.int64)
        if self.block_ids.size == 0:
            raise LaunchError("a batch needs at least one block")
        self.tally = Tally(
            n_blocks=config.n_blocks,
            threads_per_block=config.threads_per_block,
        )
        #: Optional batched LP hook (``BatchRegionObserver``); set by the
        #: LP kernel wrapper. Must expose ``protected`` and
        #: ``on_store(values, slots, mask)``.
        self.lp_observer = None
        #: Deferred stores, in issue order:
        #: ``(buffer_name, idx, values, mask)`` with leading axis = block.
        self.store_records: list[tuple] = []
        #: Deferred checksum-table insertions: block id -> [lane arrays].
        self.table_inserts: dict[int, list[np.ndarray]] = {}
        self._fence_latency = fence_latency_cycles
        self._fence_concurrency = max(1, fence_concurrency)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def n_blocks_in_batch(self) -> int:
        """Blocks covered by this context (the leading axis length)."""
        return int(self.block_ids.size)

    @property
    def n_threads(self) -> int:
        """Threads per block."""
        return self.config.threads_per_block

    @property
    def tid(self) -> np.ndarray:
        """Flat thread indices ``[0, n_threads)`` (per block)."""
        return np.arange(self.n_threads)

    # ------------------------------------------------------------------
    # Global memory
    # ------------------------------------------------------------------

    def buffer(self, buf: Buffer | str) -> Buffer:
        """Resolve a buffer handle or name."""
        return self.memory[buf] if isinstance(buf, str) else buf

    def ld(
        self,
        buf: Buffer | str,
        idx: np.ndarray,
        charge_elements: int | float | None = None,
    ) -> np.ndarray:
        """Batched global load; ``idx`` may have any shape.

        ``charge_elements`` overrides the read-traffic element count
        when the serial path would charge differently than ``idx.size``
        (e.g. per-request deduplicated probe reads).
        """
        buf = self.buffer(buf)
        idx = np.asarray(idx)
        n = idx.size if charge_elements is None else charge_elements
        self.tally.global_read_bytes += n * buf.dtype.itemsize
        return self.memory.read(buf, idx)

    def st(
        self,
        buf: Buffer | str,
        idx: np.ndarray,
        values: np.ndarray,
        slots: np.ndarray | None = None,
        mask: np.ndarray | None = None,
    ) -> None:
        """Batched global store (leading axis of ``idx`` = block).

        The store is recorded for deferred per-block application and —
        when the buffer is LP-protected — folded into the batch
        observer. ``slots`` broadcasts against ``idx`` and names the
        issuing thread of each element (defaults to position order
        within the block); ``mask`` silences ragged elements.
        """
        buf = self.buffer(buf)
        idx = np.asarray(idx)
        if idx.ndim < 2 or idx.shape[0] != self.n_blocks_in_batch:
            raise LaunchError(
                f"batched store index must lead with the {self.n_blocks_in_batch}"
                f"-block axis; got shape {idx.shape}"
            )
        vals = np.broadcast_to(
            np.asarray(values, dtype=buf.dtype), idx.shape
        )
        if mask is not None:
            mask = np.broadcast_to(np.asarray(mask, dtype=bool), idx.shape)
            n_elements = int(np.count_nonzero(mask))
        else:
            n_elements = idx.size
        self.tally.global_write_bytes += n_elements * buf.dtype.itemsize

        observer = self.lp_observer
        observed = observer is not None and buf.name in observer.protected
        if observed and slots is None:
            per_block = int(np.prod(idx.shape[1:]))
            slots = np.arange(per_block).reshape(idx.shape[1:]) \
                % self.n_threads

        if self.mode is ExecMode.VALIDATE:
            # The batched check phase: persistent writes are suppressed
            # (write traffic stays charged, as in the serial context)
            # and protected stores fold what memory *currently holds*
            # at the target addresses. Reads here are uncharged —
            # the serial VALIDATE path reads through ``memory.read``
            # directly, not ``ld``.
            if buf.persistent:
                if observed:
                    in_memory = self.memory.read(buf, idx)
                    observer.on_store(in_memory, slots, mask)
                return
            self.store_records.append((buf.name, idx, np.array(vals), mask))
            return

        self.store_records.append(
            (buf.name, idx, np.array(vals), mask)
        )
        if observed:
            observer.on_store(vals, slots, mask)

    def defer_table_insert(self, block_id: int, lanes: np.ndarray) -> None:
        """Queue a checksum-table insertion for deterministic apply."""
        self.table_inserts.setdefault(int(block_id), []).append(
            np.array(lanes, copy=True)
        )

    # ------------------------------------------------------------------
    # Work accounting
    # ------------------------------------------------------------------

    def alu(self, n_ops: float) -> None:
        """Charge ``n_ops`` thread-level ALU operations (group total)."""
        self.tally.alu_ops += n_ops

    def flops(self, per_thread: float, active_threads: int | None = None) -> None:
        """Charge FP work: ``per_thread`` ops per thread, per block."""
        n = self.n_threads if active_threads is None else active_threads
        self.tally.alu_ops += per_thread * n * self.n_blocks_in_batch

    def syncthreads(self) -> None:
        """Charge one block-wide barrier (once per block in the group)."""
        self.tally.syncthreads += self.n_blocks_in_batch

    def charge_shared(self, nbytes: float) -> None:
        """Charge shared-memory traffic: ``nbytes`` per block."""
        self.tally.shared_bytes += nbytes * self.n_blocks_in_batch

    def finalize_tally(self) -> Tally:
        """Return the group's accumulated tally."""
        return self.tally
