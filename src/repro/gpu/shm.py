"""POSIX shared-memory plumbing for the zero-copy parallel engine.

The :class:`~repro.gpu.engine.ParallelEngine` shares three kinds of
state with its persistent worker pool through named
``multiprocessing.shared_memory`` segments:

* the **device image** — every buffer's volatile ``data`` array,
  re-pointed into one segment at its line-aligned ``base_addr`` so
  workers read inputs zero-copy (no copy-on-write page duplication,
  no pickled arrays);
* the per-launch **slot array** — one fixed-size record per work chunk
  (status word, payload locator, busy-time, the eleven
  :class:`~repro.gpu.costs.Tally` fields) that workers fill and the
  parent polls, replacing pickled ``ChunkRecord`` objects;
* per-worker **arenas** — append-only byte regions that carry each
  chunk's variable-size payload (deferred stores, op logs, validation
  outcomes) in the compact binary encoding of :class:`PayloadWriter`.

Lifecycle is the hard part, not the data path. Segments live in
``/dev/shm`` under names tagged with the *creating* pid
(``lpshm-<pid>-...``), every creation is registered in a module-level
table swept by ``atexit``, and :func:`reap_orphans` deletes any
segment whose creator is dead — covering SIGKILLed workers and
harness children that never ran their own cleanup. Python 3.11's
``resource_tracker`` would otherwise unlink attached segments when the
*first* process exits and spam leak warnings for the rest; every
create/attach therefore unregisters itself and ownership is enforced
here, by creator pid, instead.
"""

from __future__ import annotations

import atexit
import errno
import os
import struct
import threading
import weakref
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.errors import LaunchError
from repro.obs import current as _recorder

#: Name prefix of every segment this module creates. The janitor only
#: ever touches names of this shape, so unrelated /dev/shm tenants are
#: safe from the sweep.
SEGMENT_PREFIX = "lpshm"

#: Where POSIX shared memory surfaces as files on Linux. Used only for
#: the orphan sweep (and by tests asserting leak-freedom); the data
#: path goes through ``multiprocessing.shared_memory``.
SHM_DIR = "/dev/shm"


def cpu_budget() -> int:
    """CPUs actually available to *this process*, container-aware.

    ``os.cpu_count()`` reports the host's core count even when the
    process is pinned to a subset (CI runners, cgroup-limited
    containers), which makes worker pools oversubscribe. Prefer
    ``os.process_cpu_count()`` (3.13+), then the scheduling affinity
    mask, then plain ``cpu_count`` as the last resort.
    """
    getter = getattr(os, "process_cpu_count", None)
    if getter is not None:
        n = getter()
        if n:
            return n
    if hasattr(os, "sched_getaffinity"):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return max(1, os.cpu_count() or 1)


class _QuietSharedMemory(shared_memory.SharedMemory):
    """A ``SharedMemory`` whose ``close`` tolerates live buffer exports.

    Numpy views pin the underlying mmap; stock ``close()`` raises
    ``BufferError`` then — including from ``__del__`` at garbage
    collection, which prints an un-catchable "Exception ignored"
    traceback. The mapping is reclaimed when the views die; the name is
    gone the moment :meth:`SharedSegment.unlink` ran, so nothing leaks.
    """

    def close(self) -> None:  # noqa: D102 - see class docstring
        try:
            super().close()
        except BufferError:
            pass


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Withdraw a segment from the resource tracker's custody.

    The tracker unlinks every segment it knows about when its owning
    process exits — wrong for segments shared across a pool, where the
    creator alone (or the janitor, if the creator was SIGKILLed) must
    decide. Registration happens inside ``SharedMemory.__init__``, so
    it is undone here right after construction.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker variations
        pass


class SharedSegment:
    """One named shared-memory segment with owner-side cleanup.

    Create with :meth:`create` (registers for atexit sweep) or map an
    existing one with :meth:`attach`. ``close()`` drops this process's
    mapping; ``unlink()`` removes the name (creator's job). Both are
    idempotent and survive numpy views still holding the buffer —
    exports are only severed when the views die, exactly the
    ``BufferError``-tolerant idiom the mapped heap uses.
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        shm.__class__ = _QuietSharedMemory
        self._shm = shm
        self.name = shm.name
        self.owner = owner
        self._closed = False
        self._unlinked = False

    # -- construction ---------------------------------------------------

    @classmethod
    def create(cls, kind: str, nbytes: int) -> "SharedSegment":
        """Create a fresh segment named ``lpshm-<pid>-<kind>-<seq>``."""
        name = _next_name(kind)
        shm = shared_memory.SharedMemory(name=name, create=True,
                                         size=max(1, int(nbytes)))
        _untrack(shm)
        seg = cls(shm, owner=True)
        _register(seg)
        publish_segment_gauges()
        return seg

    @classmethod
    def attach(cls, name: str) -> "SharedSegment":
        """Map an existing segment by name (non-owning)."""
        shm = shared_memory.SharedMemory(name=name, create=False)
        _untrack(shm)
        return cls(shm, owner=False)

    # -- data views -----------------------------------------------------

    @property
    def nbytes(self) -> int:
        return self._shm.size

    @property
    def buf(self) -> memoryview:
        return self._shm.buf

    def ndarray(self, dtype, shape, offset: int = 0) -> np.ndarray:
        """A typed numpy view into the segment (zero-copy)."""
        count = int(np.prod(shape)) if shape else 1
        return np.frombuffer(
            self._shm.buf, dtype=dtype, count=count, offset=offset
        ).reshape(shape)

    # -- teardown -------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (view-tolerant, idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:
            # Live numpy views still pin the mapping; the memory is
            # reclaimed when they go away. Unlink (below) already
            # removed the name, so nothing leaks in /dev/shm.
            pass

    def unlink(self) -> None:
        """Remove the segment's name (idempotent; creator side)."""
        if self._unlinked:
            return
        self._unlinked = True
        _unregister(self)
        try:
            # ``SharedMemory.unlink`` sends its own tracker unregister;
            # re-register first so the pair balances (the construction
            # path already unregistered once, see :func:`_untrack`).
            resource_tracker.register(self._shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker variations
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        publish_segment_gauges()

    def destroy(self) -> None:
        """Unlink then close — full owner-side teardown."""
        if self.owner:
            self.unlink()
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        role = "owner" if self.owner else "attached"
        return f"SharedSegment({self.name!r}, {self.nbytes}B, {role})"


# ---------------------------------------------------------------------------
# Creation registry + atexit sweep + orphan janitor
# ---------------------------------------------------------------------------

_lock = threading.Lock()
_seq = 0
_live: "weakref.WeakValueDictionary[str, SharedSegment]" = \
    weakref.WeakValueDictionary()
_atexit_installed = False


def _next_name(kind: str) -> str:
    global _seq
    with _lock:
        _seq += 1
        return f"{SEGMENT_PREFIX}-{os.getpid()}-{kind}-{_seq}"


def _register(seg: SharedSegment) -> None:
    global _atexit_installed
    with _lock:
        _live[seg.name] = seg
        if not _atexit_installed:
            atexit.register(_sweep_at_exit)
            _atexit_installed = True


def _unregister(seg: SharedSegment) -> None:
    with _lock:
        _live.pop(seg.name, None)


def _sweep_at_exit() -> None:
    """Unlink every segment this process created and never released."""
    for seg in list(_live.values()):
        if seg.owner:
            seg.destroy()


def disown_all() -> None:
    """Renounce ownership of every registered segment (forked child).

    A pool worker inherits the parent's registry with ``owner=True``
    entries; were the child ever to run the atexit sweep (or call
    ``destroy()``), it would unlink segments the parent still shares.
    Workers call this first thing after the fork.
    """
    with _lock:
        for seg in list(_live.values()):
            seg.owner = False


def live_segment_names() -> list[str]:
    """Names of segments created by this process and still linked."""
    with _lock:
        return sorted(_live.keys())


def segment_stats() -> tuple[int, int]:
    """``(count, total_bytes)`` of this process's live segments.

    A registry walk over :data:`_live` — the attachment-side truth,
    independent of /dev/shm listings (which also see other processes).
    """
    with _lock:
        segs = list(_live.values())
    return len(segs), sum(seg.nbytes for seg in segs)


def publish_segment_gauges(metrics=None) -> tuple[int, int]:
    """Publish ``engine.shm.segments`` / ``segment_bytes`` gauges.

    Called on every create/unlink so the gauges track the pool's
    segment footprint live (and provably return to zero when an engine
    closes — the leak tests assert exactly that), and usable as a
    telemetry-sampler gauge provider. With no ``metrics`` argument the
    currently installed recorder's registry is used; inactive
    registries make this a no-op beyond the registry walk.
    """
    count, nbytes = segment_stats()
    if metrics is None:
        metrics = _recorder().metrics
    if metrics.active:
        metrics.set_gauge("engine.shm.segments", count)
        metrics.set_gauge("engine.shm.segment_bytes", nbytes)
    return count, nbytes


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    except OSError as exc:  # pragma: no cover - defensive
        return exc.errno != errno.ESRCH
    return True


def reap_orphans() -> list[str]:
    """Unlink segments whose creating process is dead.

    The backstop for abnormal exits: a SIGKILLed worker or harness
    child cannot run its atexit sweep, but its pid is baked into every
    segment name it created. Safe to call from any process at any time;
    returns the names it reaped.
    """
    reaped = []
    try:
        entries = os.listdir(SHM_DIR)
    except OSError:  # pragma: no cover - no /dev/shm (non-Linux)
        return reaped
    prefix = SEGMENT_PREFIX + "-"
    for entry in entries:
        if not entry.startswith(prefix):
            continue
        parts = entry.split("-")
        try:
            pid = int(parts[1])
        except (IndexError, ValueError):
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(SHM_DIR, entry))
            reaped.append(entry)
        except OSError:  # pragma: no cover - raced another reaper
            pass
    return reaped


def leaked_segments() -> list[str]:
    """Every ``lpshm-*`` name currently linked in /dev/shm.

    Test helper: after an engine closes (and the janitor runs), this
    must be empty.
    """
    try:
        entries = os.listdir(SHM_DIR)
    except OSError:  # pragma: no cover - no /dev/shm
        return []
    return sorted(e for e in entries
                  if e.startswith(SEGMENT_PREFIX + "-"))


# ---------------------------------------------------------------------------
# Compact payload codec
# ---------------------------------------------------------------------------
#
# Worker chunks produce variable-size results: deferred batched stores,
# per-block op logs, validation outcome lanes. They are serialized into
# the per-worker arena with this self-describing little-endian framing
# (no pickle on the result path):
#
#   str    := u16 length, utf-8 bytes
#   array  := str dtype, u8 ndim, i64 shape..., raw data bytes
#   option := u8 presence flag, then the value if present
#
# Readers reconstruct arrays with ``np.frombuffer`` over the arena's
# memoryview — a copy only happens where application needs one anyway.

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")


class PayloadWriter:
    """Serialize one chunk's results into a contiguous byte payload."""

    def __init__(self) -> None:
        self._parts = bytearray()

    def u8(self, v: int) -> None:
        self._parts += _U8.pack(v)

    def u32(self, v: int) -> None:
        self._parts += _U32.pack(v)

    def i64(self, v: int) -> None:
        self._parts += _I64.pack(int(v))

    def str_(self, s: str) -> None:
        raw = s.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise LaunchError(f"payload string too long ({len(raw)}B)")
        self._parts += _U16.pack(len(raw))
        self._parts += raw

    def array(self, arr: np.ndarray) -> None:
        arr = np.asarray(arr)
        if not arr.flags.c_contiguous:
            # ``ascontiguousarray`` only when needed — it promotes 0-d
            # arrays to 1-d, losing the shape.
            arr = np.ascontiguousarray(arr)
        self.str_(arr.dtype.str)
        self.u8(arr.ndim)
        for dim in arr.shape:
            self.i64(dim)
        self._parts += arr.tobytes()

    def optional_array(self, arr: np.ndarray | None) -> None:
        if arr is None:
            self.u8(0)
        else:
            self.u8(1)
            self.array(arr)

    def bytes_(self, raw: bytes) -> None:
        self.u32(len(raw))
        self._parts += raw

    def getvalue(self) -> bytes:
        return bytes(self._parts)


class PayloadReader:
    """Deserialize a :class:`PayloadWriter` payload from a buffer."""

    def __init__(self, buf, offset: int = 0) -> None:
        self._buf = buf
        self._pos = offset

    def _take(self, n: int) -> bytes:
        lo = self._pos
        self._pos = lo + n
        return bytes(self._buf[lo:self._pos])

    def u8(self) -> int:
        return _U8.unpack(self._take(1))[0]

    def u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def i64(self) -> int:
        return _I64.unpack(self._take(8))[0]

    def str_(self) -> str:
        n = _U16.unpack(self._take(2))[0]
        return self._take(n).decode("utf-8")

    def array(self) -> np.ndarray:
        dtype = np.dtype(self.str_())
        ndim = self.u8()
        shape = tuple(self.i64() for _ in range(ndim))
        count = int(np.prod(shape)) if shape else 1
        raw = self._take(count * dtype.itemsize)
        return np.frombuffer(raw, dtype=dtype).reshape(shape)

    def optional_array(self) -> np.ndarray | None:
        return self.array() if self.u8() else None

    def bytes_(self) -> bytes:
        return self._take(self.u32())
