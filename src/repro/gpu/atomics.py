"""Atomic read-modify-write operations on simulated global memory.

The checksum tables rely on two primitives the paper singles out
(Section IV-C-1):

* ``atomicCAS`` — quadratic probing claims an empty slot only if it is
  still empty, eliminating insert races without a lock.
* ``atomicExch`` — cuckoo hashing unconditionally swaps the incoming
  key with whatever occupies the slot, making eviction chains race-safe.

The simulator executes blocks one at a time, so these operations are
trivially functionally atomic; what this module adds is the *cost*
bookkeeping: every atomic is counted, and a per-address histogram feeds
the same-address serialization term of the cost model (contended
atomics are the paper's diagnosis for the hash tables' overheads).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.gpu.memory import Buffer, GlobalMemory


class AtomicUnit:
    """Executes atomics and tracks contention for one kernel launch."""

    def __init__(self, memory: GlobalMemory) -> None:
        self._memory = memory
        #: Atomic operations per global element address.
        self.per_address: Counter = Counter()
        #: Total atomic operations issued.
        self.total_ops = 0

    # ------------------------------------------------------------------
    # Scalar primitives (one address), as used by table insertion.
    # ------------------------------------------------------------------

    def cas(self, buf: Buffer, index: int, compare, value) -> np.generic:
        """``atomicCAS``: store ``value`` iff the slot equals ``compare``.

        Returns the *old* value, as CUDA does; the caller infers success
        from ``old == compare``.
        """
        self._count(buf, [index])
        old = buf.data[index]
        if old == buf.dtype.type(compare):
            self._memory.write(buf, np.asarray([index]),
                               np.asarray([value], dtype=buf.dtype))
        return old

    def exch(self, buf: Buffer, index: int, value) -> np.generic:
        """``atomicExch``: unconditionally swap in ``value``; return old."""
        self._count(buf, [index])
        old = buf.data[index]
        self._memory.write(buf, np.asarray([index]),
                           np.asarray([value], dtype=buf.dtype))
        return old

    # ------------------------------------------------------------------
    # Vector primitives (per-thread), as used by histogram-style kernels.
    # ------------------------------------------------------------------

    def add(self, buf: Buffer, indices: np.ndarray, values: np.ndarray) -> None:
        """``atomicAdd`` from many threads at once.

        Conflicting indices accumulate correctly (``np.add.at``); each
        conflicting op still counts toward the hot-address histogram, so
        contention costs what it should.
        """
        idx = np.asarray(indices)
        self._count(buf, idx)
        # Functional read-modify-write with correct duplicate handling.
        np.add.at(buf.data, idx, np.asarray(values, dtype=buf.dtype))
        if buf.persistent:
            # Route the dirty-line tracking through the memory system by
            # re-writing the final values of the touched elements.
            touched = np.unique(idx)
            self._memory.write(buf, touched, buf.data[touched])

    def max_(self, buf: Buffer, indices: np.ndarray, values: np.ndarray) -> None:
        """``atomicMax`` from many threads at once."""
        idx = np.asarray(indices)
        self._count(buf, idx)
        np.maximum.at(buf.data, idx, np.asarray(values, dtype=buf.dtype))
        if buf.persistent:
            touched = np.unique(idx)
            self._memory.write(buf, touched, buf.data[touched])

    # ------------------------------------------------------------------
    # Contention accounting
    # ------------------------------------------------------------------

    @property
    def hot_max(self) -> int:
        """Largest op count landing on one single address."""
        if not self.per_address:
            return 0
        return max(self.per_address.values())

    def _count(self, buf: Buffer, indices) -> None:
        base = buf.base_addr // buf.dtype.itemsize if buf.dtype.itemsize else 0
        idx = np.asarray(indices).reshape(-1)
        self.total_ops += idx.size
        # Address = buffer-qualified element index (buffers never alias).
        for i, n in zip(*np.unique(idx, return_counts=True)):
            self.per_address[(buf.name, int(i) + base)] += int(n)
