"""The KV daemon: sockets, admission control, and the batching window.

Thread model
------------
* one **listener** thread accepts connections;
* one **reader** thread per connection decodes frames, answers
  ``ping``/``stats``/``shutdown`` inline, and enqueues batchable ops
  onto the bounded admission queue — a full queue means the request is
  *shed* (an immediate counted reject the client may retry), which is
  what keeps a traffic spike from growing the window latency without
  bound;
* one **batcher** thread owns the :class:`~repro.service.core.ServiceCore`
  (and therefore the device): it collects a window until ``max_batch``
  requests or ``max_wait_ms`` after the window's first request,
  flushes it as MegaKV batch launches plus one drain, and only then
  writes the responses back — the ack *is* the durability receipt.

Nothing here knows about persistence details; that is all
:class:`ServiceCore`. The daemon adds networking, queueing and
telemetry on top.
"""

from __future__ import annotations

import collections
import os
import signal
import socket
import threading
import time

from repro.errors import ProtocolError, ServiceError, ServiceUnavailableError
from repro.obs import current as _recorder
from repro.service import protocol
from repro.service.core import Request, ServiceConfig, ServiceCore
from repro.service.protocol import pack_frame, read_frame, validate_request

STATS_SCHEMA_VERSION = 1

#: Window latencies kept for the p50/p99 stats estimate.
LATENCY_WINDOW = 4096


class _Conn:
    """A client connection: socket + serialized writes."""

    def __init__(self, sock: socket.socket, peer: str) -> None:
        self.sock = sock
        self.peer = peer
        self.lock = threading.Lock()
        self.closed = False

    def reply(self, doc: dict) -> bool:
        """Best-effort response write; a dead client is not an error
        (its request simply goes un-acked, and un-acked means
        retryable)."""
        frame = pack_frame(doc)
        with self.lock:
            if self.closed:
                return False
            try:
                self.sock.sendall(frame)
                return True
            except OSError:
                self.closed = True
                return False

    def close(self) -> None:
        with self.lock:
            self.closed = True
            try:
                self.sock.close()
            except OSError:
                pass


class KVServer:
    """Long-lived daemon serving one durable MegaKV store.

    ``address``: a Unix socket path (``str``) or ``(host, port)``
    tuple; port 0 binds an ephemeral port (read :attr:`address` after
    :meth:`start` / :meth:`serve_forever` binds).
    """

    def __init__(self, config: ServiceConfig | None = None, *,
                 heap_path=None, shards: int = 0,
                 address="127.0.0.1:0") -> None:
        if isinstance(address, str) and ":" in address:
            host, _, port = address.rpartition(":")
            try:
                address = (host, int(port))
            except ValueError:
                raise ServiceError(
                    f"address {address!r} looks like host:port but the "
                    f"port is not an integer"
                ) from None
        self.config = config or ServiceConfig()
        self.core = ServiceCore(self.config, heap_path=heap_path,
                                shards=shards)
        self._requested_address = address
        self.address = None
        self._listener: socket.socket | None = None
        self._queue: "collections.deque[Request]" = collections.deque()
        self._queue_lock = threading.Lock()
        self._queue_event = threading.Event()
        self._stop = threading.Event()
        self._bound = threading.Event()
        self._conns: list[_Conn] = []
        self._conns_lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._t_start = time.monotonic()
        # -- counters (batcher/reader threads; ints under the GIL) ----
        self.requests = {"get": 0, "put": 0, "delete": 0}
        self.acked = 0
        self.shed = 0
        self.errors = 0
        self.windows = 0
        self.launches = 0
        self.sub_batches = 0
        self.drained_lines = 0
        self.occupancy_last = 0
        self.occupancy_max = 0
        self._occupancy_sum = 0
        self._latencies: "collections.deque[float]" = collections.deque(
            maxlen=LATENCY_WINDOW)
        self._latency_count = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _bind(self) -> None:
        addr = self._requested_address
        if isinstance(addr, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            if os.path.exists(addr):
                os.unlink(addr)
            sock.bind(addr)
            self.address = addr
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(addr)
            self.address = sock.getsockname()
        sock.listen(128)
        self._listener = sock
        self._bound.set()

    def start(self) -> "KVServer":
        """Run the daemon on background threads; returns once bound."""
        thread = threading.Thread(target=self.serve_forever,
                                  name="kv-server", daemon=True)
        thread.start()
        self._threads.append(thread)
        if not self._bound.wait(timeout=30):
            raise ServiceError("server failed to bind within 30s")
        return self

    def serve_forever(self) -> None:
        """Bind and serve until :meth:`shutdown` (or a client's
        ``shutdown`` op); then drain-close the core."""
        self._bind()
        batcher = threading.Thread(target=self._batcher_loop,
                                   name="kv-batcher", daemon=True)
        batcher.start()
        accepter = threading.Thread(target=self._accept_loop,
                                    name="kv-accept", daemon=True)
        accepter.start()
        self._stop.wait()
        # Stop intake first, then let the batcher retire the queue.
        try:
            self._listener.close()
        except OSError:
            pass
        self._queue_event.set()
        batcher.join(timeout=60)
        with self._conns_lock:
            for conn in self._conns:
                conn.close()
        self.core.close(drain=True)
        if isinstance(self.address, str):
            try:
                os.unlink(self.address)
            except OSError:
                pass

    def shutdown(self) -> None:
        self._stop.set()
        self._queue_event.set()

    def join(self, timeout: float | None = None) -> None:
        for thread in self._threads:
            thread.join(timeout=timeout)

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener closed
            conn = _Conn(sock, str(peer))
            with self._conns_lock:
                self._conns.append(conn)
            reader = threading.Thread(target=self._reader_loop,
                                      args=(conn,), name="kv-reader",
                                      daemon=True)
            reader.start()

    def _reader_loop(self, conn: _Conn) -> None:
        try:
            while not self._stop.is_set():
                try:
                    doc = read_frame(conn.sock)
                except (ProtocolError, ServiceUnavailableError, OSError):
                    return
                if doc is None:
                    return
                self._dispatch(conn, doc)
        finally:
            conn.close()
            with self._conns_lock:
                if conn in self._conns:
                    self._conns.remove(conn)

    def _dispatch(self, conn: _Conn, doc: dict) -> None:
        req_id = doc.get("id")
        try:
            op = validate_request(doc)
        except ProtocolError as exc:
            self.errors += 1
            conn.reply({"id": req_id, "ok": False, "error": str(exc)})
            return
        if op == "ping":
            conn.reply({"id": req_id, "ok": True, "op": "ping"})
            return
        if op == "stats":
            conn.reply({"id": req_id, "ok": True, "op": "stats",
                        "stats": self.stats()})
            return
        if op == "shutdown":
            conn.reply({"id": req_id, "ok": True, "op": "shutdown"})
            self.shutdown()
            return
        request = Request(op=op, key=doc["key"],
                          value=doc.get("value"), req_id=req_id,
                          conn=conn, t_enqueue=time.monotonic())
        with self._queue_lock:
            if len(self._queue) >= self.config.queue_cap \
                    or self._stop.is_set():
                admitted = False
            else:
                self._queue.append(request)
                admitted = True
        if admitted:
            self.requests[op] += 1
            self._queue_event.set()
        else:
            # Admission control: bounded queue, counted shed. The
            # client sees an immediate, explicit reject instead of an
            # unbounded latency tail.
            self.shed += 1
            rec = _recorder()
            if rec.metrics.active:
                rec.metrics.inc("service.requests.shed", op=op)
            conn.reply({"id": req_id, "ok": False, "op": op,
                        "error": "shed", "shed": True})

    # ------------------------------------------------------------------
    # Batcher side
    # ------------------------------------------------------------------

    def _take(self, deadline: float | None) -> Request | None:
        """Pop one queued request, waiting until ``deadline`` (None =
        wait for intake or stop)."""
        while True:
            with self._queue_lock:
                if self._queue:
                    request = self._queue.popleft()
                    if not self._queue:
                        self._queue_event.clear()
                    return request
                self._queue_event.clear()
            if deadline is None:
                if self._stop.is_set():
                    return None
                self._queue_event.wait(timeout=0.05)
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._queue_event.wait(timeout=remaining)

    def _batcher_loop(self) -> None:
        cfg = self.config
        rec = _recorder()
        while True:
            first = self._take(None)
            if first is None:
                if self._stop.is_set() and not self._queue:
                    return
                continue
            window = [first]
            deadline = time.monotonic() + cfg.max_wait_ms / 1000.0
            while len(window) < cfg.max_batch:
                request = self._take(deadline)
                if request is None:
                    break
                window.append(request)
            self._flush(window, rec)

    def _flush(self, window: list[Request], rec) -> None:
        cfg = self.config
        try:
            result = self.core.execute_window(window)
        except ServiceError as exc:
            self.errors += len(window)
            for req in window:
                if req.conn is not None:
                    req.conn.reply({"id": req.req_id, "ok": False,
                                    "op": req.op, "error": str(exc)})
            return
        now = time.monotonic()
        self.windows += 1
        self.launches += result.launches
        self.sub_batches += result.sub_batches
        self.drained_lines += result.drained_lines
        self.occupancy_last = len(window)
        self.occupancy_max = max(self.occupancy_max, len(window))
        self._occupancy_sum += len(window)
        for req, doc in result.responses:
            doc["id"] = req.req_id
            ok = doc.get("ok", False)
            if ok:
                self.acked += 1
            else:
                self.errors += 1
            latency = now - req.t_enqueue
            self._latencies.append(latency)
            self._latency_count += 1
            if req.conn is not None:
                req.conn.reply(doc)
        if rec.metrics.active:
            rec.metrics.inc("service.windows")
            rec.metrics.inc("service.launches", result.launches)
            rec.metrics.inc("service.requests.acked", len(window))
            rec.metrics.observe("service.window.occupancy", len(window))
            rec.metrics.observe("service.window.ms",
                                result.elapsed_s * 1000.0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def queue_depth(self) -> int:
        with self._queue_lock:
            return len(self._queue)

    def publish_gauges(self, metrics) -> None:
        """`TelemetrySampler` gauge provider: live service health."""
        metrics.set_gauge("service.queue.depth", self.queue_depth())
        metrics.set_gauge("service.queue.capacity", self.config.queue_cap)
        metrics.set_gauge("service.batch.occupancy", self.occupancy_last)
        metrics.set_gauge("service.shed.requests", self.shed)
        metrics.set_gauge("service.windows.flushed", self.windows)

    def _latency_quantiles(self) -> dict:
        count = self._latency_count
        sample = sorted(self._latencies)
        if not sample:
            return {"count": 0, "p50_ms": None, "p99_ms": None}

        def pct(q: float) -> float:
            idx = min(len(sample) - 1, int(q * (len(sample) - 1) + 0.5))
            return sample[idx] * 1000.0

        return {"count": count, "p50_ms": pct(0.50), "p99_ms": pct(0.99)}

    def stats(self) -> dict:
        """The daemon's stats document (``service_stats`` schema)."""
        occ_mean = (self._occupancy_sum / self.windows
                    if self.windows else 0.0)
        return {
            "schema": STATS_SCHEMA_VERSION,
            "backend": self.core.backend(),
            "engine": self.config.engine,
            "uptime_s": time.monotonic() - self._t_start,
            "config": {
                "capacity": self.config.capacity,
                "cache_lines": self.config.cache_lines,
                "max_batch": self.config.max_batch,
                "max_wait_ms": self.config.max_wait_ms,
                "queue_cap": self.config.queue_cap,
                "shards": self.core.shards,
            },
            "counters": {
                "requests": dict(self.requests),
                "acked": self.acked,
                "shed": self.shed,
                "errors": self.errors,
                "windows": self.windows,
                "launches": self.launches,
                "sub_batches": self.sub_batches,
                "drained_lines": self.drained_lines,
            },
            "queue_depth": self.queue_depth(),
            "batch_occupancy": {
                "last": self.occupancy_last,
                "mean": occ_mean,
                "max": self.occupancy_max,
            },
            "latency_ms": self._latency_quantiles(),
            "records": self.core.records(),
            "resume": dict(self.core.resume_info),
        }

    # ------------------------------------------------------------------
    # Harness hook
    # ------------------------------------------------------------------

    def install_kill_trigger(self, trigger: str) -> None:
        """Arm a crash-harness kill trigger (``writebacks:N`` et al).

        Harness-internal: the serve crash scenario spawns the daemon in
        its own session and SIGKILLs the whole group from inside the
        armed write-back window, exactly like
        :mod:`repro.harness.crashproc` children do.
        """
        from repro.harness.crashproc import (
            _SHARDWB_RE,
            parse_trigger,
            shardwb_target,
        )

        kind, value = parse_trigger(trigger)

        def die() -> None:
            os.kill(0, signal.SIGKILL)

        if kind == "writebacks":
            threshold = int(value)

            def on_writeback(cumulative_lines: int) -> None:
                if cumulative_lines >= threshold:
                    die()

            if self.core.heap is None:
                raise ServiceError(
                    "writebacks trigger needs a durable heap")
            self.core.heap.writeback_listener = on_writeback
        elif _SHARDWB_RE.match(kind):
            threshold = int(value)
            target = shardwb_target(kind)
            shards = getattr(self.core.heap, "shards", None)
            if shards is None:
                raise ServiceError(
                    f"trigger {trigger!r} targets a shard, but the heap "
                    "is not sharded")

            def on_shard_writeback(cumulative_lines: int) -> None:
                if cumulative_lines >= threshold:
                    die()

            for k, shard in enumerate(shards):
                if target is None or k == target:
                    shard.writeback_listener = on_shard_writeback
        elif kind == "blocks":
            threshold = int(value)

            def on_block(cumulative_blocks: int) -> None:
                if cumulative_blocks >= threshold:
                    die()

            self.core.device.block_hook = on_block
        else:  # walltime
            timer = threading.Timer(value, die)
            timer.daemon = True
            timer.start()
