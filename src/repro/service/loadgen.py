"""Seeded load generator for the KV daemon.

Everything a client will do is decided before its first byte hits the
socket: :func:`plan_ops` derives each client's full request stream —
zipfian keys, op mix, values — from ``(seed, client index)`` alone, so
any two runs of ``bench-serve`` replay identical traffic (a unit test
pins the first keys and the op mix of seed 0). The threads then only
*execute* the plan, with a configurable pipeline depth, latency
accounting, and (for the crash harness) reconnect-and-retry-until-
acked semantics plus read-your-writes verification over per-client
disjoint key partitions.
"""

from __future__ import annotations

import collections
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ServiceError, ServiceUnavailableError
from repro.service.protocol import ServiceClient

#: Odd 64-bit constant (2**64 / golden ratio); multiplication by an
#: odd number is a bijection of Z/2**64, so scrambled ranks collide
#: exactly when the ranks do — and never produce the key 0 the store
#: reserves.
_SCRAMBLE = np.uint64(0x9E3779B97F4A7C15)


class ZipfianKeys:
    """Deterministic zipfian key stream over ``n_keys`` ranks.

    Rank ``r`` (1-based) is drawn with probability proportional to
    ``1 / r**theta`` — the YCSB-style skew MEGA-KV is evaluated under —
    then scrambled to a uint64 key so the hot keys don't cluster in
    the store's bucket space. ``rank_offset`` shifts the rank domain,
    giving clients disjoint key partitions (the scramble is a
    bijection, so disjoint ranks stay disjoint keys).
    """

    def __init__(self, n_keys: int, theta: float = 0.99,
                 rank_offset: int = 0) -> None:
        if n_keys <= 0:
            raise ServiceError("zipfian key space must be positive")
        self.n_keys = n_keys
        self.theta = theta
        self.rank_offset = rank_offset
        weights = 1.0 / np.arange(1, n_keys + 1, dtype=np.float64) ** theta
        self._cdf = np.cumsum(weights / weights.sum())

    def key_of(self, rank: int) -> int:
        """The uint64 key of a 1-based rank."""
        return ((rank + self.rank_offset) * int(_SCRAMBLE)) % (1 << 64)

    def draw(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """``size`` keys, hot-first skewed, as a uint64 array."""
        ranks = np.searchsorted(self._cdf, rng.random(size)) + 1
        return (ranks.astype(np.uint64)
                + np.uint64(self.rank_offset)) * _SCRAMBLE


@dataclass
class LoadConfig:
    """One load run: N clients executing seeded plans."""

    clients: int = 4
    requests_per_client: int = 200
    key_space: int = 512
    theta: float = 0.99
    get_frac: float = 0.50
    put_frac: float = 0.40
    delete_frac: float = 0.10
    seed: int = 0
    #: Outstanding requests per client (1 = strict request/response).
    pipeline: int = 1
    #: Optional aggregate request-rate cap (requests/s across clients).
    target_qps: float | None = None
    timeout: float = 30.0
    #: Give each client a disjoint rank partition (enables verification).
    partition_keys: bool = False
    #: Crash-harness mode: reconnect on connection loss and re-send
    #: every un-acked request until it acks.
    retry_until_acked: bool = False
    #: How long reconnect attempts keep retrying (the daemon's restart
    #: window in the crash scenario).
    reconnect_wait_s: float = 60.0
    #: Verify GET responses against the client's own acked writes
    #: (requires partition_keys and pipeline == 1).
    verify: bool = False


def plan_ops(cfg: LoadConfig, client_idx: int) \
        -> list[tuple[str, int, int | None]]:
    """The full deterministic request plan of one client.

    Consumes the client's RNG in a fixed order (keys, ops, values), so
    the plan is a pure function of ``(cfg.seed, client_idx)`` and the
    shape parameters.
    """
    if not (0.999 < cfg.get_frac + cfg.put_frac + cfg.delete_frac < 1.001):
        raise ServiceError("op-mix fractions must sum to 1")
    rng = np.random.default_rng([cfg.seed, client_idx])
    offset = client_idx * cfg.key_space if cfg.partition_keys else 0
    zipf = ZipfianKeys(cfg.key_space, cfg.theta, rank_offset=offset)
    n = cfg.requests_per_client
    keys = zipf.draw(rng, n)
    mix = rng.random(n)
    values = rng.integers(1, 1 << 63, size=n, dtype=np.uint64)
    plan: list[tuple[str, int, int | None]] = []
    for i in range(n):
        key = int(keys[i])
        if mix[i] < cfg.get_frac:
            plan.append(("get", key, None))
        elif mix[i] < cfg.get_frac + cfg.put_frac:
            plan.append(("put", key, int(values[i])))
        else:
            plan.append(("delete", key, None))
    return plan


@dataclass
class _Pending:
    req_id: int
    op: tuple[str, int, int | None]
    t_sent: float


@dataclass
class ClientReport:
    """What one client thread observed."""

    client: int
    latencies_ms: list[float] = field(default_factory=list)
    ops: dict = field(default_factory=lambda: {"get": 0, "put": 0,
                                               "delete": 0})
    acked: int = 0
    shed: int = 0
    errors: int = 0
    reconnects: int = 0
    resent: int = 0
    verify_mismatches: list[dict] = field(default_factory=list)
    #: Final acked write per key (value, or ``None`` for a delete) —
    #: the client's expectation of durable state.
    expected: dict = field(default_factory=dict)
    failure: str | None = None


@dataclass
class LoadReport:
    """Aggregate of one :func:`run_load` invocation."""

    clients: list[ClientReport]
    wall_s: float

    @property
    def acked(self) -> int:
        return sum(c.acked for c in self.clients)

    @property
    def shed(self) -> int:
        return sum(c.shed for c in self.clients)

    @property
    def errors(self) -> int:
        return sum(c.errors for c in self.clients)

    @property
    def reconnects(self) -> int:
        return sum(c.reconnects for c in self.clients)

    @property
    def resent(self) -> int:
        return sum(c.resent for c in self.clients)

    @property
    def qps(self) -> float:
        return self.acked / self.wall_s if self.wall_s > 0 else 0.0

    def latencies_ms(self) -> list[float]:
        out: list[float] = []
        for c in self.clients:
            out.extend(c.latencies_ms)
        return out

    def percentile_ms(self, q: float) -> float | None:
        lats = sorted(self.latencies_ms())
        if not lats:
            return None
        idx = min(len(lats) - 1, int(q * (len(lats) - 1) + 0.5))
        return lats[idx]

    def expected_state(self) -> dict:
        """Merged per-client expectations (needs disjoint partitions)."""
        merged: dict = {}
        for c in self.clients:
            merged.update(c.expected)
        return merged

    def to_dict(self) -> dict:
        ops = {"get": 0, "put": 0, "delete": 0}
        for c in self.clients:
            for op, count in c.ops.items():
                ops[op] += count
        return {
            "clients": len(self.clients),
            "wall_s": self.wall_s,
            "qps": self.qps,
            "acked": self.acked,
            "shed": self.shed,
            "errors": self.errors,
            "reconnects": self.reconnects,
            "resent": self.resent,
            "ops": ops,
            "p50_ms": self.percentile_ms(0.50),
            "p99_ms": self.percentile_ms(0.99),
        }


def run_load(address, cfg: LoadConfig, deadline_s: float = 600.0) \
        -> LoadReport:
    """Execute every client's plan against a live daemon."""
    if cfg.verify and (not cfg.partition_keys or cfg.pipeline != 1):
        raise ServiceError(
            "verify mode needs partition_keys and pipeline=1 "
            "(read-your-writes is only exact for a serial client on "
            "its own keys)"
        )
    reports = [ClientReport(client=i) for i in range(cfg.clients)]
    threads = []
    t0 = time.perf_counter()
    for i in range(cfg.clients):
        thread = threading.Thread(
            target=_client_worker,
            args=(address, cfg, i, reports[i], deadline_s),
            name=f"loadgen-{i}", daemon=True)
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join(timeout=deadline_s)
    wall = time.perf_counter() - t0
    return LoadReport(clients=reports, wall_s=wall)


def _client_worker(address, cfg: LoadConfig, idx: int,
                   report: ClientReport, deadline_s: float) -> None:
    try:
        _run_client(address, cfg, idx, report, deadline_s)
    except Exception as exc:  # surfaced via the report, not the thread
        report.failure = f"{type(exc).__name__}: {exc}"


def _run_client(address, cfg: LoadConfig, idx: int,
                report: ClientReport, deadline_s: float) -> None:
    todo = collections.deque(plan_ops(cfg, idx))
    pending: collections.deque[_Pending] = collections.deque()
    client = ServiceClient(address, timeout=cfg.timeout)
    client.connect(retry_for=cfg.reconnect_wait_s
                   if cfg.retry_until_acked else 0.0)
    gap = (cfg.clients / cfg.target_qps) if cfg.target_qps else 0.0
    deadline = time.monotonic() + deadline_s

    def on_lost() -> None:
        """Connection died: everything in flight is un-acked. Requeue
        in order and ride out the daemon's restart."""
        if not cfg.retry_until_acked:
            raise ServiceUnavailableError("connection lost")
        report.reconnects += 1
        report.resent += len(pending)
        for entry in reversed(pending):
            todo.appendleft(entry.op)
        pending.clear()
        client.close()
        client.connect(retry_for=cfg.reconnect_wait_s)

    while todo or pending:
        if time.monotonic() > deadline:
            raise ServiceError(f"client {idx} exceeded its deadline")
        # Fill the pipeline.
        while todo and len(pending) < cfg.pipeline:
            op, key, value = todo[0]
            try:
                req_id = client.send(op, key, value)
            except ServiceUnavailableError:
                on_lost()
                continue
            todo.popleft()
            pending.append(_Pending(req_id, (op, key, value),
                                    time.monotonic()))
            if gap:
                time.sleep(gap)
        # Retire one response.
        try:
            resp = client.wait_any()
        except ServiceUnavailableError:
            on_lost()
            continue
        entry = None
        for candidate in pending:
            if candidate.req_id == resp.get("id"):
                entry = candidate
                break
        if entry is None:
            continue  # response to a request requeued after a reconnect
        pending.remove(entry)
        _account(cfg, report, entry, resp, todo)


def _account(cfg: LoadConfig, report: ClientReport, entry: _Pending,
             resp: dict, todo: collections.deque) -> None:
    op, key, value = entry.op
    if resp.get("ok"):
        report.acked += 1
        report.ops[op] += 1
        report.latencies_ms.append(
            (time.monotonic() - entry.t_sent) * 1000.0)
        if op == "put":
            report.expected[key] = value
        elif op == "delete":
            report.expected[key] = None
        elif cfg.verify:
            want = report.expected.get(key)
            got = resp.get("value")
            if got != want:
                report.verify_mismatches.append(
                    {"key": key, "want": want, "got": got})
        return
    if resp.get("shed"):
        report.shed += 1
        if cfg.retry_until_acked:
            todo.appendleft(entry.op)
        return
    report.errors += 1
    if cfg.retry_until_acked:
        todo.appendleft(entry.op)
