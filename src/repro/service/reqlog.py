"""Per-window request log — the tiny WAL behind restart-resume.

The daemon's durability problem is not the data (the mapped heap
already survives SIGKILL); it is the *layout*. `GlobalMemory` is a
bump allocator — every checksum table and search-results buffer of an
in-flight window sits at an address determined by the full allocation
history — and `MappedShadow.adopt` demands an exact layout match. So
before launching a window the daemon writes one log record capturing
everything needed to replay the window's allocations deterministically
in a fresh process:

* ``next_addr`` — the allocator cursor before the window's first
  allocation,
* ``batch_counter`` — the session's batch number, which names every
  checksum table (``megakv-insert_b<counter>``) and results buffer,
* the window's sub-batches (ordered op groups with their keys/values).

A restarted daemon reads the record, advances a fresh allocator to
``next_addr``, re-runs the identical allocation sequence, adopts the
heap, and hands every replayed launch to the recovery path. The log is
cleared only after the window's checkpoint drained — crash anywhere in
between and the record is still there.

Writes go through write-temp + :func:`os.replace`, so a reader sees
either the previous record or the new one, never a torn mix. There is
deliberately no fsync: the heap itself relies on page-cache durability
(surviving process death, not power loss), and the log needs exactly
the same guarantee — see ``docs/durability.md``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import ServiceError

SCHEMA_VERSION = 1

#: Suffix appended to the heap path to name its request log.
SUFFIX = ".reqlog"


def log_path_for(heap_path) -> Path:
    """The request-log path paired with a heap path."""
    heap_path = Path(heap_path)
    return heap_path.with_name(heap_path.name + SUFFIX)


class RequestLog:
    """One-record write-ahead log for the in-flight request window."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    def begin(self, *, next_addr: int, batch_counter: int,
              sub_batches: list[dict]) -> None:
        """Durably record the window about to launch."""
        doc = {
            "schema": SCHEMA_VERSION,
            "next_addr": int(next_addr),
            "batch_counter": int(batch_counter),
            "sub_batches": sub_batches,
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(doc, separators=(",", ":")))
        os.replace(tmp, self.path)

    def clear(self) -> None:
        """Retire the record (the window's checkpoint committed)."""
        self.path.unlink(missing_ok=True)

    def read(self) -> dict | None:
        """The pending window record, or ``None`` when nothing is armed."""
        try:
            raw = self.path.read_text()
        except FileNotFoundError:
            return None
        if not raw.strip():
            return None
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError as exc:
            # The atomic-replace write protocol makes this unreachable
            # short of filesystem corruption; refuse to guess.
            raise ServiceError(
                f"request log {self.path} is undecodable: {exc}"
            ) from exc
        if doc.get("schema") != SCHEMA_VERSION:
            raise ServiceError(
                f"request log {self.path} has schema "
                f"{doc.get('schema')!r}; this build reads "
                f"{SCHEMA_VERSION}"
            )
        return doc
