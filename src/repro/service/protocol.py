"""Wire protocol of the KV service: length-prefixed JSON frames.

Every message — request or response — is one *frame*: a 4-byte
big-endian unsigned length followed by that many bytes of UTF-8 JSON
encoding a single object. Requests carry ``{"id", "op", "key",
"value"}``; responses echo the ``id`` and add ``{"ok", "value",
"error"}``. Keys and values are the store's domain: non-zero unsigned
64-bit integers (0 is the empty-slot sentinel on the GPU side, so the
protocol rejects it at the door).

Responses are matched by ``id``, not by order: a request shed by
admission control is answered immediately from the reader thread while
earlier accepted requests are still waiting on their batch ack, so a
pipelined client can observe reordering. :class:`ServiceClient` hides
this behind a pending-response map.
"""

from __future__ import annotations

import itertools
import json
import socket
import struct
import time

from repro.errors import ProtocolError, ServiceUnavailableError

#: Frame header: big-endian unsigned 32-bit payload length.
HEADER = struct.Struct(">I")

#: Upper bound on a single frame's JSON payload.
MAX_FRAME = 16 * 1024 * 1024

#: Operations a client may send.
OPS = ("get", "put", "delete", "ping", "stats", "shutdown")

#: Operations that enter the batching window (everything else is
#: answered inline by the reader thread).
BATCH_OPS = ("get", "put", "delete")

#: Exclusive upper bound of the key/value domain (uint64).
KEY_LIMIT = 1 << 64


def pack_frame(doc: dict) -> bytes:
    """Encode one JSON document as a wire frame."""
    payload = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME={MAX_FRAME}"
        )
    return HEADER.pack(len(payload)) + payload


def recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on clean EOF at a boundary.

    EOF *inside* a frame (a torn frame) raises — the peer died
    mid-message, which callers must not confuse with a clean close.
    """
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n:
                return None
            raise ServiceUnavailableError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> dict | None:
    """Read one frame; ``None`` on clean EOF before a header."""
    head = recv_exact(sock, HEADER.size)
    if head is None:
        return None
    (length,) = HEADER.unpack(head)
    if length > MAX_FRAME:
        raise ProtocolError(
            f"peer announced a {length}-byte frame (max {MAX_FRAME})"
        )
    payload = recv_exact(sock, length)
    if payload is None:
        raise ServiceUnavailableError("connection closed between frames")
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError(
            f"frame payload is {type(doc).__name__}, expected object"
        )
    return doc


def validate_request(doc: dict) -> str:
    """Validate a request document; returns its op.

    Raises :class:`ProtocolError` on anything a well-behaved client
    would never send — the daemon turns that into an error *response*
    for recoverable shapes and drops the connection for unframeable
    garbage.
    """
    op = doc.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}")
    if op in BATCH_OPS:
        key = doc.get("key")
        if not isinstance(key, int) or isinstance(key, bool) \
                or not 0 < key < KEY_LIMIT:
            raise ProtocolError(
                f"op {op!r} needs an integer key in [1, 2**64) "
                f"(got {key!r})"
            )
    if op == "put":
        value = doc.get("value")
        if not isinstance(value, int) or isinstance(value, bool) \
                or not 0 < value < KEY_LIMIT:
            raise ProtocolError(
                f"put needs an integer value in [1, 2**64) (got {value!r})"
            )
    return op


class ServiceClient:
    """Blocking (optionally pipelined) client for the KV daemon.

    ``address`` is either a Unix socket path (``str``) or a
    ``(host, port)`` tuple. The client is single-threaded: one thread
    may pipeline requests with :meth:`send` / :meth:`wait`, but
    concurrent use needs one client per thread (the load generator
    does exactly that).
    """

    def __init__(self, address, timeout: float = 30.0) -> None:
        self.address = address
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._ids = itertools.count(1)
        self._pending: dict[int, dict] = {}

    # -- connection lifecycle -------------------------------------------

    def connect(self, retry_for: float = 0.0) -> "ServiceClient":
        """Connect, optionally retrying for ``retry_for`` seconds.

        The retry loop is what lets harness clients ride out a daemon
        SIGKILL: they spin here until the restarted daemon listens
        again.
        """
        deadline = time.monotonic() + retry_for
        delay = 0.02
        while True:
            try:
                self._sock = self._dial()
                return self
            except OSError as exc:
                self._sock = None
                if time.monotonic() >= deadline:
                    raise ServiceUnavailableError(
                        f"cannot connect to {self.address!r}: {exc}"
                    ) from exc
                time.sleep(delay)
                delay = min(delay * 2, 0.25)

    def _dial(self) -> socket.socket:
        if isinstance(self.address, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.address)
        except OSError:
            sock.close()
            raise
        return sock

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
        self._pending.clear()

    def __enter__(self) -> "ServiceClient":
        if self._sock is None:
            self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- pipelined primitives -------------------------------------------

    def send(self, op: str, key: int | None = None,
             value: int | None = None) -> int:
        """Send one request without waiting; returns its id."""
        if self._sock is None:
            raise ServiceUnavailableError("client is not connected")
        req_id = next(self._ids)
        doc: dict = {"id": req_id, "op": op}
        if key is not None:
            doc["key"] = key
        if value is not None:
            doc["value"] = value
        try:
            self._sock.sendall(pack_frame(doc))
        except OSError as exc:
            self.close()
            raise ServiceUnavailableError(f"send failed: {exc}") from exc
        return req_id

    def wait(self, req_id: int) -> dict:
        """Block until the response for ``req_id`` arrives."""
        if req_id in self._pending:
            return self._pending.pop(req_id)
        while True:
            resp = self._read_response()
            got = resp.get("id")
            if got == req_id:
                return resp
            self._pending[got] = resp

    def wait_any(self) -> dict:
        """Block until *some* response arrives (pipelined clients)."""
        if self._pending:
            return self._pending.pop(next(iter(self._pending)))
        return self._read_response()

    def _read_response(self) -> dict:
        if self._sock is None:
            raise ServiceUnavailableError("client is not connected")
        try:
            resp = read_frame(self._sock)
        except OSError as exc:
            self.close()
            raise ServiceUnavailableError(f"recv failed: {exc}") from exc
        except ServiceUnavailableError:
            self.close()
            raise
        if resp is None:
            self.close()
            raise ServiceUnavailableError("server closed the connection")
        return resp

    # -- blocking convenience calls -------------------------------------

    def call(self, op: str, key: int | None = None,
             value: int | None = None) -> dict:
        """Send one request and wait for its response."""
        return self.wait(self.send(op, key, value))

    def get(self, key: int) -> int | None:
        """Look a key up; ``None`` on miss. Raises on shed/error."""
        resp = self.call("get", key)
        if not resp.get("ok"):
            raise ServiceUnavailableError(
                f"get({key}) failed: {resp.get('error')}"
            )
        return resp.get("value")

    def put(self, key: int, value: int) -> dict:
        return self.call("put", key, value)

    def delete(self, key: int) -> dict:
        return self.call("delete", key)

    def ping(self) -> dict:
        return self.call("ping")

    def stats(self) -> dict:
        """Fetch the daemon's stats document (see service_stats schema)."""
        resp = self.call("stats")
        if not resp.get("ok"):
            raise ServiceUnavailableError(
                f"stats failed: {resp.get('error')}"
            )
        return resp["stats"]

    def shutdown(self) -> dict:
        """Ask the daemon to drain and exit cleanly."""
        return self.call("shutdown")
