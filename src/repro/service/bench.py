"""``repro bench-serve`` — service latency/throughput measurements.

Runs the daemon in-process (real sockets, real threads — only the
process boundary is elided) under the seeded load generator and
records p50/p99 client latency and sustained QPS per scenario into
``BENCH_serve.json``. Two gates pin the service's reason to exist:

* ``batched_speedup_floor`` — on the same mapped heap, the batching
  window must buy at least 3x the throughput of a one-request-per-
  launch daemon: N requests sharing one persistence-domain drain
  instead of buying one each is the paper's amortization argument,
  restated as a service;
* ``mapped_p50_ceiling`` — serving from a mapped durable heap must
  cost at most 2x the in-memory p50 (durability as a bounded tax,
  matching the mapped-overhead gate in ``BENCH_sim.json``).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.harness.tmpdir import ManagedTmpdir
from repro.service.core import ServiceConfig
from repro.service.daemon import KVServer
from repro.service.loadgen import LoadConfig, run_load

BASELINE_PATH = Path(__file__).resolve().parents[3] / "BENCH_serve.json"

#: Batched QPS over one-request-per-launch QPS must be at least this.
BATCHED_SPEEDUP_FLOOR = 3.0
#: Mapped-backed p50 over in-memory p50 must be at most this.
MAPPED_P50_CEILING = 2.0

#: Shared load shape: enough in-flight traffic (clients x pipeline)
#: to fill windows, a key space wide enough that zipfian collisions
#: don't fragment every window into singleton sub-batches.
_LOAD = dict(clients=4, pipeline=8, key_space=1024, theta=0.9,
             get_frac=0.5, put_frac=0.4, delete_frac=0.1, seed=7)

_SERVICE = dict(capacity=8192, cache_lines=512, engine="serial")


def _scenario(name: str, service_cfg: ServiceConfig, load_cfg: LoadConfig,
              tmp: ManagedTmpdir, heap: bool = False,
              shards: int = 0) -> dict:
    heap_path = tmp.file(f"{name}.heap.lpnv") if heap else None
    server = KVServer(service_cfg, heap_path=heap_path, shards=shards,
                      address=str(tmp.file(f"{name}.sock"))).start()
    try:
        report = run_load(server.address, load_cfg)
        failures = [c.failure for c in report.clients if c.failure]
        if failures:
            raise RuntimeError(f"{name}: client failures: {failures}")
        stats = server.stats()
    finally:
        server.shutdown()
        server.join(timeout=60)
    doc = report.to_dict()
    doc["server"] = {
        "backend": stats["backend"],
        "windows": stats["counters"]["windows"],
        "launches": stats["counters"]["launches"],
        "sub_batches": stats["counters"]["sub_batches"],
        "drained_lines": stats["counters"]["drained_lines"],
        "batch_occupancy": stats["batch_occupancy"],
        "records": stats["records"],
    }
    return doc


def run_suite(quick: bool = False) -> dict:
    """Measure every scenario; returns the BENCH_serve document."""
    rpc_baseline = 40 if quick else 75
    rpc_batched = 150 if quick else 400
    results: dict[str, dict] = {}
    with ManagedTmpdir(prefix="repro-bench-serve-") as tmp:
        results["one_per_launch"] = _scenario(
            "one_per_launch",
            ServiceConfig(max_batch=1, max_wait_ms=0.0, **_SERVICE),
            LoadConfig(requests_per_client=rpc_baseline, **_LOAD),
            tmp, heap=True)
        results["batched_memory"] = _scenario(
            "batched_memory",
            ServiceConfig(max_batch=128, max_wait_ms=2.0, **_SERVICE),
            LoadConfig(requests_per_client=rpc_batched, **_LOAD),
            tmp)
        results["batched_mapped"] = _scenario(
            "batched_mapped",
            ServiceConfig(max_batch=128, max_wait_ms=2.0, **_SERVICE),
            LoadConfig(requests_per_client=rpc_batched, **_LOAD),
            tmp, heap=True)
        results["batched_sharded"] = _scenario(
            "batched_sharded",
            ServiceConfig(max_batch=128, max_wait_ms=2.0, **_SERVICE),
            LoadConfig(requests_per_client=rpc_batched, **_LOAD),
            tmp, heap=True, shards=4)

    speedup = (results["batched_mapped"]["qps"]
               / max(results["one_per_launch"]["qps"], 1e-9))
    p50_ratio = (results["batched_mapped"]["p50_ms"]
                 / max(results["batched_memory"]["p50_ms"], 1e-9))
    return {
        "benchmark": "serve_smoke",
        "schema": 1,
        "command": "PYTHONPATH=src python -m repro bench-serve",
        "gates": {
            "batched_speedup_floor": BATCHED_SPEEDUP_FLOOR,
            "mapped_p50_ceiling": MAPPED_P50_CEILING,
        },
        "derived": {
            "batched_speedup": speedup,
            "mapped_p50_ratio": p50_ratio,
        },
        "scenarios": results,
    }


def check_gates(doc: dict) -> list[str]:
    """Gate failures in a BENCH_serve document (empty = pass)."""
    failures = []
    speedup = doc["derived"]["batched_speedup"]
    if speedup < doc["gates"]["batched_speedup_floor"]:
        failures.append(
            f"batched service throughput is only {speedup:.2f}x the "
            f"one-request-per-launch baseline "
            f"(floor {doc['gates']['batched_speedup_floor']}x)")
    ratio = doc["derived"]["mapped_p50_ratio"]
    if ratio > doc["gates"]["mapped_p50_ceiling"]:
        failures.append(
            f"mapped-backed p50 is {ratio:.2f}x in-memory p50 "
            f"(ceiling {doc['gates']['mapped_p50_ceiling']}x)")
    return failures


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="measure KV-service latency/QPS scenarios")
    parser.add_argument("--out", default=str(BASELINE_PATH),
                        help="where to write the bench JSON")
    parser.add_argument("--quick", action="store_true",
                        help="smaller request counts (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when a gate fails")
    args = parser.parse_args(argv)

    doc = run_suite(quick=args.quick)
    Path(args.out).write_text(json.dumps(doc, indent=2) + "\n")
    for name, sc in doc["scenarios"].items():
        print(f"{name:>16}: {sc['qps']:8.1f} req/s  "
              f"p50 {sc['p50_ms']:.2f} ms  p99 {sc['p99_ms']:.2f} ms  "
              f"(shed {sc['shed']})")
    print(f"batched speedup: {doc['derived']['batched_speedup']:.2f}x "
          f"(floor {doc['gates']['batched_speedup_floor']}x); "
          f"mapped p50 ratio: {doc['derived']['mapped_p50_ratio']:.2f}x "
          f"(ceiling {doc['gates']['mapped_p50_ceiling']}x)")
    failures = check_gates(doc)
    for failure in failures:
        print(f"GATE FAIL: {failure}")
    return 1 if (failures and args.check) else 0


if __name__ == "__main__":
    raise SystemExit(main())
