"""Socket-free heart of the KV daemon.

:class:`ServiceCore` owns the durable heap, the device, the
:class:`~repro.megakv.store.MegaKVStore` and its
:class:`~repro.megakv.lp.KVBatchSession`, and implements the two
halves of the service's contract:

**The flush path.** A *window* (the requests one batching interval
collected) is split into maximal key-disjoint *sub-batches* in arrival
order (:func:`partition_window`), logged to the request WAL, launched
as LP-instrumented MegaKV batches, and checkpointed — one
``device.drain()`` per window, which is what makes batching pay: N
requests share one persistence-domain drain instead of buying one
each. Only after the drain (and the WAL retire) does the caller get
the responses to ack, so *an acked write is a drained write*.

**The resume path.** On construction with an existing heap the core
cold-opens it, replays the WAL's allocation sequence at the recorded
allocator cursor so every in-flight table and results buffer lands at
the address the heap directory knows it by, adopts the heap, and runs
every replayed launch through the engine-pluggable recovery fast path
(validate, re-execute failed regions). Acked windows were drained and
cleared their WAL record, so they are untouched; the at-most-one
unacked in-flight window either recovers fully or is re-applied by
client retries — both idempotent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.config import LPConfig
from repro.core.recovery import RecoveryManager
from repro.core.runtime import LPRuntime
from repro.errors import ServiceError, TableFullError
from repro.gpu.device import Device
from repro.gpu.engine import make_engine
from repro.megakv.kernels import (
    KVDeleteKernel,
    KVInsertKernel,
    KVSearchKernel,
    alloc_results,
)
from repro.megakv.lp import KVBatchSession
from repro.megakv.store import MegaKVStore
from repro.nvm.mapped import MappedShadow
from repro.nvm.sharded import ShardedShadow, open_heap
from repro.obs import current as _recorder
from repro.service.reqlog import RequestLog, log_path_for

#: LP configurations the service can run under (same names as the
#: crash harness's ``--configs``).
LP_CONFIGS = {
    "global-array": LPConfig.paper_best,
    "quadratic": LPConfig.naive_quadratic,
    "cuckoo": LPConfig.naive_cuckoo,
}


@dataclass
class ServiceConfig:
    """Tunables of one daemon instance."""

    #: Record capacity of the store (slots are 8x this — the paper's
    #: <= 12.5 % load-factor sizing).
    capacity: int = 8192
    engine: str = "serial"
    jobs: int | None = None
    cache_lines: int = 256
    #: LP configuration name (see :data:`LP_CONFIGS`).
    config: str = "global-array"
    #: Flush the batching window at this many requests ...
    max_batch: int = 128
    #: ... or this many milliseconds after its first request.
    max_wait_ms: float = 2.0
    #: Admission-control bound: requests queued beyond this are shed.
    queue_cap: int = 1024
    threads_per_block: int = 64
    store_name: str = "megakv"

    def lp_config(self) -> LPConfig:
        if self.config not in LP_CONFIGS:
            raise ServiceError(
                f"unknown LP config {self.config!r}; expected one of "
                + ", ".join(sorted(LP_CONFIGS))
            )
        return LP_CONFIGS[self.config]()


@dataclass
class Request:
    """One batchable client request (op in get/put/delete)."""

    op: str
    key: int
    value: int | None = None
    #: Client-assigned request id, echoed in the response.
    req_id: int | None = None
    #: Opaque connection handle the daemon replies on.
    conn: object = None
    #: Enqueue timestamp (monotonic) for latency accounting.
    t_enqueue: float = 0.0


@dataclass
class SubBatch:
    """A key-disjoint slice of a window; its launches commute."""

    inserts: list[Request] = field(default_factory=list)
    deletes: list[Request] = field(default_factory=list)
    searches: list[Request] = field(default_factory=list)

    def write_keys(self) -> set[int]:
        return {r.key for r in self.inserts} | {r.key for r in self.deletes}


def partition_window(requests: list[Request]) -> list[SubBatch]:
    """Split a window into maximal key-disjoint sub-batches, in order.

    MegaKV batch kernels require unique keys per batch (writes within a
    batch must commute), and a GET must not share a batch with a write
    to the same key (the batch would not know which comes first). The
    rule, scanning in arrival order: a write to a key already written
    *or read* in the current sub-batch starts a new one; so does a read
    of a key already written. Duplicate reads coexist fine.

    Within one sub-batch every op therefore touches a distinct key
    (except repeated GETs), so executing inserts, then deletes, then
    searches is equivalent to any interleaving — arrival order across
    sub-batches carries the semantics.
    """
    batches: list[SubBatch] = []
    current = SubBatch()
    written: set[int] = set()
    read: set[int] = set()
    for req in requests:
        is_write = req.op in ("put", "delete")
        conflict = (req.key in written) or (is_write and req.key in read)
        if conflict:
            batches.append(current)
            current = SubBatch()
            written = set()
            read = set()
        if req.op == "put":
            current.inserts.append(req)
            written.add(req.key)
        elif req.op == "delete":
            current.deletes.append(req)
            written.add(req.key)
        elif req.op == "get":
            current.searches.append(req)
            read.add(req.key)
        else:
            raise ServiceError(f"unbatchable op {req.op!r}")
    if current.inserts or current.deletes or current.searches:
        batches.append(current)
    return batches


def _wal_sub_batches(sub_batches: list[SubBatch]) -> list[dict]:
    """JSON-able WAL image of a partitioned window."""
    out = []
    for sb in sub_batches:
        out.append({
            "inserts": [[r.key, r.value] for r in sb.inserts],
            "deletes": [r.key for r in sb.deletes],
            "searches": [r.key for r in sb.searches],
        })
    return out


@dataclass
class WindowResult:
    """Outcome of one flushed window."""

    #: ``(request, response-doc)`` pairs, one per request, in arrival
    #: order within each op group.
    responses: list[tuple[Request, dict]]
    launches: int
    sub_batches: int
    drained_lines: int
    elapsed_s: float


class ServiceCore:
    """Heap + store + session lifecycle and the window flush path.

    Single-threaded by contract: exactly one thread (the daemon's
    batcher) may call :meth:`execute_window`. Construction runs the
    full cold-open / replay / recover sequence when ``heap_path``
    names an existing heap.
    """

    def __init__(self, config: ServiceConfig | None = None,
                 heap_path=None, shards: int = 0) -> None:
        self.config = config or ServiceConfig()
        self.heap_path = Path(heap_path) if heap_path is not None else None
        self.shards = shards
        self.heap = None
        self.reqlog: RequestLog | None = None
        #: Filled by the resume path; see ``stats()["resume"]``.
        self.resume_info: dict = {
            "resumed": False, "replayed_launches": 0,
            "recovered_blocks": 0, "reattached_buffers": 0,
            "detached_orphans": 0, "torn_lines": 0,
        }
        self._open()

    # ------------------------------------------------------------------
    # Cold start / resume
    # ------------------------------------------------------------------

    def _open(self) -> None:
        cfg = self.config
        engine = make_engine(cfg.engine, jobs=cfg.jobs)
        if self.heap_path is None:
            # Volatile service: nothing survives a restart, but the
            # whole flush path is identical (used as the latency
            # baseline by bench-serve).
            self.device = Device(cache_capacity_lines=cfg.cache_lines,
                                 engine=engine)
            self.store = MegaKVStore(self.device, cfg.capacity,
                                     name=cfg.store_name)
            self.session = KVBatchSession(
                self.device, self.store, cfg.lp_config(),
                threads_per_block=cfg.threads_per_block)
            return

        self.reqlog = RequestLog(log_path_for(self.heap_path))
        if self.heap_path.exists():
            self._resume(engine)
        else:
            self.heap_path.parent.mkdir(parents=True, exist_ok=True)
            if self.shards > 0:
                self.heap = ShardedShadow.create(self.heap_path,
                                                 n_shards=self.shards)
            else:
                self.heap = MappedShadow.create(self.heap_path)
            self.device = Device(cache_capacity_lines=cfg.cache_lines,
                                 engine=engine, shadow=self.heap)
            self.store = MegaKVStore(self.device, cfg.capacity,
                                     name=cfg.store_name)
            self.session = KVBatchSession(
                self.device, self.store, cfg.lp_config(),
                threads_per_block=cfg.threads_per_block)

    def _resume(self, engine) -> None:
        """Cold-open an existing heap, replay the WAL, recover, resume."""
        cfg = self.config
        rec = _recorder()
        with rec.trace.span("service.resume", cat="service",
                            track="service", heap=str(self.heap_path)):
            self.heap = open_heap(self.heap_path)
            torn = getattr(self.heap, "torn", None)
            self.resume_info["torn_lines"] = len(torn.lines) if torn else 0

            # Rebuild the pre-crash memory layout: the store first (its
            # two buffers are always the first allocations), then the
            # WAL window's tables and results buffers at the recorded
            # cursor.
            self.device = Device(cache_capacity_lines=cfg.cache_lines,
                                 engine=engine)
            self.store = MegaKVStore(self.device, cfg.capacity,
                                     name=cfg.store_name)
            wal = self.reqlog.read()
            replayed, result_names = [], []
            if wal is not None:
                self.device.memory.set_alloc_cursor(wal["next_addr"])
                replayed, result_names = self._replay_allocations(wal)

            # Reconcile directory vs rebuilt layout. A replayed
            # allocation the crashed process never reached is missing
            # from the heap — attach it (its seed image equals what the
            # live attach would have written). An entry no rebuilt
            # buffer claims can only be a leftover the crashed process
            # was mid-way through freeing after its drain — drop it.
            memory = self.device.memory
            for name, buf in memory.buffers.items():
                if buf.persistent and name not in self.heap.entries:
                    self.heap.attach(buf)
                    self.resume_info["reattached_buffers"] += 1
            for name in list(self.heap.entries):
                if name not in memory:
                    self.heap.detach(name)
                    self.resume_info["detached_orphans"] += 1
            self.heap.adopt(memory)

            # Engine-pluggable validate + recover, oldest-first, then
            # one drain to retire the whole window.
            recovered_blocks = 0
            for lp_kernel in replayed:
                report = RecoveryManager(self.device, lp_kernel).recover()
                recovered_blocks += len(report.recovered_blocks)
            if replayed:
                self.device.drain()
                for lp_kernel in replayed:
                    lp_kernel.table.free()
                for name in result_names:
                    self.device.free(name)
            self.reqlog.clear()

            self.resume_info.update(
                resumed=True,
                replayed_launches=len(replayed),
                recovered_blocks=recovered_blocks,
            )
            self.session = KVBatchSession(
                self.device, self.store, cfg.lp_config(),
                threads_per_block=cfg.threads_per_block)
        if rec.metrics.active:
            rec.metrics.inc("service.resumes")
            rec.metrics.inc("service.resume.replayed_launches",
                            len(replayed))
            rec.metrics.inc("service.resume.recovered_blocks",
                            recovered_blocks)

    def _replay_allocations(self, wal: dict):
        """Re-run the WAL window's allocation sequence, allocating
        tables and results buffers under their pre-crash names and
        addresses. Mirrors :meth:`_launch_sub_batch` exactly — the two
        must stay in lockstep for the adopt to be sound."""
        cfg = self.config
        runtime = LPRuntime(self.device, cfg.lp_config())
        counter = wal["batch_counter"]
        replayed, result_names = [], []

        def instrument(kernel) -> None:
            nonlocal counter
            replayed.append(runtime.instrument(
                kernel, table_name=f"{kernel.name}_b{counter}"))
            counter += 1

        for sb in wal["sub_batches"]:
            if sb["inserts"]:
                keys = np.array([k for k, _ in sb["inserts"]],
                                dtype=np.uint64)
                vals = np.array([v for _, v in sb["inserts"]],
                                dtype=np.uint64)
                instrument(KVInsertKernel(self.store, keys, vals,
                                          cfg.threads_per_block))
            if sb["deletes"]:
                keys = np.array(sb["deletes"], dtype=np.uint64)
                instrument(KVDeleteKernel(self.store, keys,
                                          cfg.threads_per_block))
            if sb["searches"]:
                keys = np.array(sb["searches"], dtype=np.uint64)
                name = f"{self.store.name}_results_{counter}"
                alloc_results(self.device, name, keys.size)
                result_names.append(name)
                instrument(KVSearchKernel(self.store, keys, name,
                                          cfg.threads_per_block))
        return replayed, result_names

    # ------------------------------------------------------------------
    # Flush path
    # ------------------------------------------------------------------

    @property
    def durable(self) -> bool:
        return self.heap is not None

    def records(self) -> int:
        """Live record count (non-empty key slots)."""
        keys = self.device.memory[f"{self.store.name}_keys"].array
        return int(np.count_nonzero(keys))

    def execute_window(self, requests: list[Request]) -> WindowResult:
        """Partition, log, launch, checkpoint, and answer one window."""
        t0 = time.perf_counter()
        sub_batches = partition_window(requests)
        responses: list[tuple[Request, dict]] = []
        launches = 0

        # Admission guard: refuse puts that could not fit. Sub-batch
        # inserts may still raise TableFullError under pathological
        # bucket skew; that is handled below as a window-wide error.
        n_puts = sum(len(sb.inserts) for sb in sub_batches)
        record_cap = self.store.n_slots // 8  # the sized load-factor target
        if n_puts and self.records() + n_puts > record_cap:
            return self._fail_window(requests, "store_full", t0)

        if self.durable:
            self.reqlog.begin(
                next_addr=self.device.memory.alloc_cursor,
                batch_counter=self.session.batch_counter,
                sub_batches=_wal_sub_batches(sub_batches),
            )
        try:
            for sb in sub_batches:
                launches += self._launch_sub_batch(sb, responses)
            drained = self.session.checkpoint()
        except TableFullError:
            # Converge whatever did land, retire the window, and report
            # the failure to every requester — their retries are
            # idempotent.
            self.session.checkpoint()
            if self.durable:
                self.reqlog.clear()
            return self._fail_window(requests, "store_full", t0)
        if self.durable:
            self.reqlog.clear()
        return WindowResult(
            responses=responses,
            launches=launches,
            sub_batches=len(sub_batches),
            drained_lines=drained,
            elapsed_s=time.perf_counter() - t0,
        )

    def _launch_sub_batch(self, sb: SubBatch,
                          responses: list[tuple[Request, dict]]) -> int:
        """One sub-batch's launches; mirrors :meth:`_replay_allocations`."""
        launches = 0
        if sb.inserts:
            keys = np.array([r.key for r in sb.inserts], dtype=np.uint64)
            vals = np.array([r.value for r in sb.inserts], dtype=np.uint64)
            self.session.insert(keys, vals)
            launches += 1
            for req in sb.inserts:
                responses.append((req, {"ok": True, "op": "put"}))
        if sb.deletes:
            keys = np.array([r.key for r in sb.deletes], dtype=np.uint64)
            self.session.delete(keys)
            launches += 1
            for req in sb.deletes:
                responses.append((req, {"ok": True, "op": "delete"}))
        if sb.searches:
            keys = np.array([r.key for r in sb.searches], dtype=np.uint64)
            outcome = self.session.search(keys)
            launches += 1
            for req, raw in zip(sb.searches, outcome.results):
                value = int(raw)
                responses.append((req, {
                    "ok": True, "op": "get",
                    "value": value if value else None,
                }))
        return launches

    @staticmethod
    def _fail_window(requests: list[Request], error: str,
                     t0: float) -> WindowResult:
        responses = [
            (req, {"ok": False, "op": req.op, "error": error})
            for req in requests
        ]
        return WindowResult(responses=responses, launches=0,
                            sub_batches=0, drained_lines=0,
                            elapsed_s=time.perf_counter() - t0)

    # ------------------------------------------------------------------
    # Introspection / shutdown
    # ------------------------------------------------------------------

    def backend(self) -> str:
        if self.heap is None:
            return "memory"
        return "sharded" if self.shards > 0 else "mapped"

    def close(self, drain: bool = True) -> None:
        """Release the heap; ``drain=False`` abandons cached lines
        (test hook simulating an unclean stop without a SIGKILL)."""
        if drain:
            self.device.drain()
        if self.heap is not None:
            self.heap.close()
            self.heap = None
