"""``repro.service`` — the persistent MEGA-KV daemon.

A long-lived server that owns a durable (mapped or sharded)
:class:`~repro.megakv.store.MegaKVStore`, speaks a length-prefixed
JSON protocol over a Unix or TCP socket, and aggregates concurrent
client requests into LP-instrumented MegaKV batch launches. Acks are
sent only after the window's write-back drained, so no acked write is
ever lost; on restart the daemon cold-opens the heap, replays the
request log, runs validate+recover, and resumes serving.

Modules
-------
``protocol``
    Wire framing and the blocking / pipelined :class:`ServiceClient`.
``core``
    :class:`ServiceCore` — heap lifecycle, window partitioning, the
    flush/ack path and restart recovery, with no socket code.
``reqlog``
    The per-window request log (a tiny WAL) that makes restart replay
    possible on top of the bump allocator.
``daemon``
    :class:`KVServer` — sockets, reader threads, the bounded admission
    queue and the batcher thread.
``loadgen``
    Seeded zipfian load generator (N clients, mixed op ratios).
``bench``
    The ``repro bench-serve`` suite behind ``BENCH_serve.json``.
"""

from repro.service.core import ServiceConfig, ServiceCore, partition_window
from repro.service.daemon import KVServer
from repro.service.loadgen import LoadConfig, ZipfianKeys, run_load
from repro.service.protocol import ServiceClient

__all__ = [
    "KVServer",
    "LoadConfig",
    "ServiceClient",
    "ServiceConfig",
    "ServiceCore",
    "ZipfianKeys",
    "partition_window",
    "run_load",
]
