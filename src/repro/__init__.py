"""``repro`` — Scalable and Fast Lazy Persistency on GPUs (IISWC 2020).

A from-scratch reproduction of the paper's system: GPU Lazy Persistency
(LP) on a simulated SIMT device whose global memory sits in an NVM
persistence domain with lazy (eviction-driven) write-back.

Quick tour
----------

>>> import repro
>>> device = repro.Device()
>>> work = repro.workloads.TMMWorkload(scale="tiny")
>>> kernel = work.setup(device)
>>> lp = repro.LPRuntime(device, repro.LPConfig.paper_best())
>>> lp_kernel = lp.instrument(kernel)
>>> result = device.launch(lp_kernel)
>>> work.verify(device)                       # outputs are correct

Public surface
--------------

* :class:`Device` / :class:`GPUSpec` / :class:`NVMSpec` — the simulated
  NVM-backed GPU.
* :class:`LPConfig` and its enums — the design space of Section IV.
* :class:`LPRuntime` / :class:`LazyPersistentKernel` — kernel
  instrumentation (checksums, reduction, checksum table).
* :class:`RecoveryManager` — post-crash validation + eager recovery.
* :class:`CrashPlan` / :class:`FaultInjector` — failure models.
* :class:`MappedShadow` / :class:`ShardedShadow` / :mod:`repro.harness`
  — the durable mmap-backed NVM heap, its sharded multi-heap scale-out
  (``--shards N``), and the out-of-process crash-kill harness
  (``python -m repro crash-test``).
* :mod:`repro.workloads` — the paper's nine benchmarks.
* :mod:`repro.compiler` — the ``#pragma nvm`` directive compiler.
* :mod:`repro.bench` — the experiment harness for every table/figure.
* :mod:`repro.obs` — the flight recorder: tracing, metrics, and
  recovery forensics (see ``docs/observability.md``).
"""

from repro.core.checksum import (
    ChecksumSet,
    float_bits,
    float_to_ordered_int,
)
from repro.core.config import (
    AtomicMode,
    ChecksumKind,
    LockMode,
    LPConfig,
    ReductionMode,
    TableKind,
)
from repro.core.checkpoint import (
    CheckpointManager,
    CheckpointPolicy,
    optimal_checkpoint_interval,
)
from repro.core.fusion import FusedKernel, fuse_blocks
from repro.core.recovery import RecoveryManager, RecoveryReport, ValidationReport
from repro.core.runtime import LazyPersistentKernel, LPRuntime
from repro.ep import EagerPersistentKernel, EPRecoveryManager, EPRuntime
from repro.core.tables import make_table
from repro.errors import ReproError
from repro.gpu.device import Device, LaunchResult
from repro.gpu.engine import (
    BatchedEngine,
    LaunchEngine,
    ParallelEngine,
    SerialEngine,
    make_engine,
)
from repro.gpu.kernel import BlockContext, ExecMode, Kernel, LaunchConfig
from repro.gpu.spec import GPUSpec, NVMSpec
from repro.nvm.audit import AuditReport, audit_crash_consistency
from repro.nvm.crash import CrashPlan, FaultInjector
from repro.nvm.mapped import MappedShadow
from repro.nvm.sharded import ShardedShadow

from repro import obs  # noqa: E402  (re-export subpackage)
from repro import workloads  # noqa: E402  (re-export subpackage)

__version__ = "1.0.0"

__all__ = [
    "AtomicMode",
    "AuditReport",
    "BatchedEngine",
    "BlockContext",
    "CheckpointManager",
    "CheckpointPolicy",
    "ChecksumKind",
    "ChecksumSet",
    "CrashPlan",
    "Device",
    "EPRecoveryManager",
    "EPRuntime",
    "EagerPersistentKernel",
    "ExecMode",
    "FaultInjector",
    "FusedKernel",
    "GPUSpec",
    "Kernel",
    "LaunchConfig",
    "LaunchEngine",
    "LaunchResult",
    "LazyPersistentKernel",
    "LockMode",
    "LPConfig",
    "LPRuntime",
    "MappedShadow",
    "NVMSpec",
    "ParallelEngine",
    "RecoveryManager",
    "RecoveryReport",
    "ReductionMode",
    "ReproError",
    "SerialEngine",
    "ShardedShadow",
    "TableKind",
    "ValidationReport",
    "__version__",
    "audit_crash_consistency",
    "float_bits",
    "float_to_ordered_int",
    "fuse_blocks",
    "make_engine",
    "make_table",
    "obs",
    "optimal_checkpoint_interval",
    "workloads",
]
