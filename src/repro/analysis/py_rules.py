"""lplint rules over the Python-DSL kernel front-end.

Operates on live kernel objects (object mode — buffer names resolve,
helper methods inline) or on plain ``.py`` source files (file mode —
conservative, literal-only resolution). The rules mirror their CUDA
counterparts in :mod:`repro.analysis.cuda_rules`, plus the two that
only exist on this front-end:

* LP004/LP006 fire on :class:`~repro.core.runtime.LazyPersistentKernel`
  wrappers, where the checksum-table sizing and the parity/float
  configuration are concrete objects instead of directive text.
* LP005 cross-checks a kernel's ``parallel_safe`` declaration against
  the replay constraints of the parallel launch engine
  (:mod:`repro.gpu.engine` forbids ``atomic_cas``/``atomic_exch``/
  ``clwb`` and host-visible mutation in replayed blocks).
"""

from __future__ import annotations

import ast

import numpy as np

from repro.analysis.astinfo import (
    PyKernelEffects,
    analyze_function_node,
    analyze_kernel_callable,
    is_block_independent,
)
from repro.analysis.findings import Finding, Severity, apply_suppressions
from repro.gpu.kernel import Kernel


def _unwrap(kernel):
    """Peel instrumentation wrappers down to the computational kernel."""
    wrappers = []
    seen = set()
    while id(kernel) not in seen:
        seen.add(id(kernel))
        wrappers.append(kernel)
        inner = getattr(kernel, "inner", None)
        if isinstance(inner, Kernel):
            kernel = inner
        else:
            break
    return kernel, wrappers


def _body_callable(kernel):
    """The function whose AST is the kernel's block body."""
    fn = getattr(kernel, "_fn", None)
    if fn is not None:  # FunctionKernel / kernel_from_function
        return fn
    return type(kernel).run_block


def _has_custom_recovery(kernel) -> bool:
    if hasattr(kernel, "_recover_fn"):
        # FunctionKernel's recover_block override is only a dispatcher;
        # the recovery is custom iff a recover_fn was actually given.
        return kernel._recover_fn is not None
    return type(kernel).recover_block is not Kernel.recover_block


def kernel_effects(kernel) -> PyKernelEffects:
    """Extract the AST effect sets of a live kernel object."""
    fn = _body_callable(kernel)
    return analyze_kernel_callable(fn, instance=kernel, name=kernel.name)


# ---------------------------------------------------------------------------
# Object-mode rules
# ---------------------------------------------------------------------------

def _check_lp001(kernel, effects: PyKernelEffects, device) -> list[Finding]:
    findings: list[Finding] = []
    protected = set(kernel.protected_buffers)
    for store in effects.stores:
        if store.buffer is None or store.buffer in protected:
            continue
        if device is not None:
            buf = device.memory[store.buffer] if store.buffer in device.memory else None
            if buf is None or not buf.persistent:
                continue  # scratch data needs no checksum coverage
            severity = Severity.ERROR
            detail = "persistent"
        else:
            if not protected:
                continue  # kernel opted out of LP entirely
            severity = Severity.WARNING
            detail = "possibly persistent"
        findings.append(Finding(
            rule="LP001",
            severity=severity,
            message=(
                f"store to {detail} buffer '{store.buffer}' is not in "
                f"protected= ({sorted(protected) or 'empty'}); a crash "
                "after this store is undetectable"
            ),
            line=store.lineno,
            kernel=kernel.name,
            fix_hint=(
                f"add '{store.buffer}' to the kernel's protected= "
                "declaration, or allocate it with persistent=False"
            ),
        ))
    return findings


def _check_lp002(kernel, effects: PyKernelEffects) -> list[Finding]:
    if _has_custom_recovery(kernel) or not kernel.idempotent:
        # A non-idempotent declaration makes default recovery raise
        # UnrecoverableRegionError instead of silently re-executing.
        return []
    hazards = effects.idempotence_hazards()
    return [
        Finding(
            rule="LP002",
            severity=Severity.ERROR,
            message=(
                f"region is not provably idempotent ({hazard}) but "
                "default recovery re-executes it"
            ),
            kernel=kernel.name,
            fix_hint=(
                "declare idempotent=False, provide a custom "
                "recover_block, or restructure the region so outputs "
                "are write-only"
            ),
        )
        for hazard in hazards
    ]


def _check_lp003(kernel, effects: PyKernelEffects) -> list[Finding]:
    findings: list[Finding] = []
    try:
        n_blocks = kernel.launch_config().n_blocks
    except Exception:
        n_blocks = 0
    if n_blocks <= 1:
        return findings
    protected = set(kernel.protected_buffers)
    for store in effects.stores:
        if store.buffer not in protected:
            continue
        if is_block_independent(store.index, effects):
            findings.append(Finding(
                rule="LP003",
                severity=Severity.ERROR,
                message=(
                    f"store to protected buffer '{store.buffer}' uses a "
                    "block-independent index: all "
                    f"{n_blocks} blocks write the same elements "
                    "(cross-block write race breaks LP region recovery)"
                ),
                line=store.lineno,
                kernel=kernel.name,
                fix_hint=(
                    "derive the store index from ctx.block_id / "
                    "ctx.block_xy so per-block write sets are disjoint"
                ),
            ))
    return findings


def _check_lp005(kernel, effects: PyKernelEffects) -> list[Finding]:
    if not getattr(kernel, "parallel_safe", False):
        return []
    reasons: list[tuple[str, int | None]] = []
    for store in effects.atomic_stores:
        if store.atomic in ("cas", "exch"):
            reasons.append((
                f"ctx.atomic_{store.atomic} on "
                f"'{store.buffer or store.buffer_text}'",
                store.lineno,
            ))
    for lineno in effects.clwb_lines:
        reasons.append(("explicit ctx.clwb (cache-state dependent)", lineno))
    for lineno in effects.host_mutations:
        reasons.append(("mutation of host-visible kernel state (self.*)", lineno))
    return [
        Finding(
            rule="LP005",
            severity=Severity.ERROR,
            message=(
                f"kernel declares parallel_safe = True but uses {what}; "
                "the parallel launch engine replays blocks out of order "
                "and forbids this"
            ),
            line=lineno,
            kernel=kernel.name,
            fix_hint="declare parallel_safe = False on the kernel class",
        )
        for what, lineno in reasons
    ]


def _resolve_int(node: ast.expr, kernel) -> int | None:
    """Best-effort constant resolution of an index subexpression."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    chain = None
    if isinstance(node, ast.Attribute):
        from repro.analysis.astinfo import _attr_chain

        chain = _attr_chain(node)
    if chain and chain[0] == "self" and kernel is not None:
        value = kernel
        for attr in chain[1:]:
            try:
                value = getattr(value, attr)
            except AttributeError:
                return None
        return value if isinstance(value, int) else None
    return None


def _block_mod_wrap(index: ast.expr | None, effects, kernel) -> int | None:
    """Smallest modulus K when *every* block-identity mention in the
    store index sits under ``<block-derived> % K`` with constant K.

    Blocks ``b`` and ``b + K`` then compute identical indices — a
    provable cross-block overlap whenever K < n_blocks. Returns None
    if any block dependence escapes a constant modulus (not provable).
    """
    if index is None:
        return None

    def mentions_block(node: ast.expr) -> bool:
        from repro.analysis.astinfo import _BLOCK_ATTRS, _attr_chain

        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute):
                chain = _attr_chain(sub)
                if chain and any(p in _BLOCK_ATTRS for p in chain):
                    return True
            if isinstance(sub, ast.Name) and sub.id in effects.block_tainted:
                return True
        return False

    if not mentions_block(index):
        return None
    mods: list[int] = []
    covered: set[int] = set()
    for sub in ast.walk(index):
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Mod):
            k = _resolve_int(sub.right, kernel)
            if k is not None and k > 0 and mentions_block(sub.left):
                mods.append(k)
                for leaf in ast.walk(sub.left):
                    covered.add(id(leaf))
    if not mods:
        return None
    # Every block mention must live inside one of the mod subtrees.
    from repro.analysis.astinfo import _BLOCK_ATTRS, _attr_chain

    for sub in ast.walk(index):
        block_leaf = False
        if isinstance(sub, ast.Attribute):
            chain = _attr_chain(sub)
            block_leaf = bool(chain and any(p in _BLOCK_ATTRS for p in chain))
        elif isinstance(sub, ast.Name):
            block_leaf = sub.id in effects.block_tainted
        if block_leaf and id(sub) not in covered:
            return None
    return max(mods)


def _check_lp008(kernel, effects: PyKernelEffects) -> list[Finding]:
    """Cross-block write overlap on protected buffers without atomics.

    Two provable paths, in preference order: the kernel's own
    ``block_output_map`` slices (exact per-block write sets — any
    element written by two blocks is a persist-order race the per-block
    checksums cannot arbitrate), else a ``% K`` wrap pattern in the
    store index that maps distinct blocks onto identical indices.
    """
    try:
        n_blocks = kernel.launch_config().n_blocks
    except Exception:
        return []
    if n_blocks <= 1:
        return []
    protected = set(kernel.protected_buffers)
    nonatomic = {
        s.buffer for s in effects.stores
        if s.atomic is None and s.buffer in protected
    }
    if not nonatomic:
        return []
    findings: list[Finding] = []

    maps: list[dict] | None = None
    if n_blocks <= 1024:
        maps = []
        try:
            for b in range(n_blocks):
                m = kernel.block_output_map(b)
                if m is None:
                    maps = None
                    break
                maps.append(m)
        except Exception:
            maps = None
    if maps is not None:
        union: dict[str, np.ndarray] = {}
        flagged: set[str] = set()
        for b, m in enumerate(maps):
            for buf, idx in m.items():
                if buf not in nonatomic or buf in flagged:
                    continue
                arr = np.unique(np.asarray(idx).ravel())
                prev = union.get(buf)
                if prev is not None:
                    clash = np.intersect1d(arr, prev, assume_unique=True)
                    if clash.size:
                        flagged.add(buf)
                        findings.append(Finding(
                            rule="LP008",
                            severity=Severity.ERROR,
                            message=(
                                f"blocks write overlapping elements of "
                                f"protected buffer '{buf}' without atomics "
                                f"(e.g. element {int(clash[0])} is written "
                                f"by block {b} and an earlier block); "
                                "recovery re-executes failed blocks only, "
                                "so the surviving writer's value is lost"
                            ),
                            kernel=kernel.name,
                            fix_hint=(
                                "make per-block write sets disjoint, or "
                                "use atomics and declare the region "
                                "non-idempotent"
                            ),
                        ))
                        continue
                union[buf] = arr if prev is None else np.union1d(prev, arr)
        return findings

    # No output map: fall back to the provable %-wrap pattern.
    for s in effects.stores:
        if s.atomic is not None or s.buffer not in nonatomic:
            continue
        k = _block_mod_wrap(s.index, effects, kernel)
        if k is not None and k < n_blocks:
            findings.append(Finding(
                rule="LP008",
                severity=Severity.ERROR,
                message=(
                    f"store index to protected buffer '{s.buffer}' wraps "
                    f"block identity modulo {k} but the launch has "
                    f"{n_blocks} blocks: blocks b and b+{k} write the "
                    "same elements without atomics"
                ),
                line=s.lineno,
                kernel=kernel.name,
                fix_hint=(
                    "remove the modulus (or raise it to the grid size) "
                    "so per-block write sets are disjoint"
                ),
            ))
    return findings


def _check_lp009(kernel, effects: PyKernelEffects) -> list[Finding]:
    """Recovered stores whose RHS reads kernel-mutated locations.

    Under default re-execution recovery, a store whose value derives
    from a load of a buffer the kernel itself writes is replayed
    against possibly-already-persisted output — the classic
    double-apply. Sharper (per store, with the value's provenance)
    than LP002's buffer-granularity overlap.
    """
    if _has_custom_recovery(kernel) or not kernel.idempotent:
        return []
    protected = set(kernel.protected_buffers)
    written = effects.written_buffers
    findings: list[Finding] = []
    for s in effects.stores:
        if s.atomic is not None or s.buffer is None or s.buffer not in protected:
            continue
        bad = sorted(s.value_buffers & (written | {s.buffer}))
        if bad:
            findings.append(Finding(
                rule="LP009",
                severity=Severity.ERROR,
                message=(
                    f"recovered store to '{s.buffer}' computes its value "
                    f"from a load of {bad} which this kernel mutates; "
                    "after a partial persist, re-execution reads the "
                    "already-new value and double-applies"
                ),
                line=s.lineno,
                kernel=kernel.name,
                fix_hint=(
                    "stage the read-modify-write through a scratch "
                    "buffer, or declare idempotent=False / provide a "
                    "custom recover_block"
                ),
            ))
    return findings


def _check_lp010(kernel, effects: PyKernelEffects) -> list[Finding]:
    """Shared-memory values persisted after a divergent barrier.

    ``syncthreads`` under a thread-dependent branch deadlocks or
    desynchronizes real hardware; any shared-memory value stored to a
    protected buffer after it may be stale for the threads that skipped
    the barrier, and the persisted bytes (and their checksum) are then
    unreliable.
    """
    if not effects.divergent_sync_lines:
        return []
    first = min(effects.divergent_sync_lines)
    protected = set(kernel.protected_buffers)
    findings: list[Finding] = []
    for s in effects.stores:
        if (s.buffer in protected and s.value_uses_shared
                and s.lineno > first):
            findings.append(Finding(
                rule="LP010",
                severity=Severity.ERROR,
                message=(
                    f"store to protected buffer '{s.buffer}' persists a "
                    "shared-memory value after a syncthreads inside a "
                    f"thread-divergent branch (line {first}); threads "
                    "that skip the barrier may persist stale data"
                ),
                line=s.lineno,
                kernel=kernel.name,
                fix_hint=(
                    "hoist ctx.syncthreads() out of thread-dependent "
                    "control flow before any persistent store"
                ),
            ))
    return findings


def _check_lp004_object(lp_kernel) -> list[Finding]:
    """Table sizing of a live LazyPersistentKernel."""
    table = getattr(lp_kernel, "table", None)
    if table is None:
        return []
    n_blocks = lp_kernel.launch_config().n_blocks
    n_keys = table.n_keys
    if n_keys < n_blocks:
        return [Finding(
            rule="LP004",
            severity=Severity.ERROR,
            message=(
                f"checksum table '{table.name}' is sized for {n_keys} "
                f"keys but the launch produces {n_blocks} block "
                "checksums (load factor > 1 overflows "
                "quadratic/cuckoo probing; the global array raises)"
            ),
            kernel=lp_kernel.name,
            fix_hint=(
                "size the table from the launch grid "
                "(LPRuntime.instrument does this automatically)"
            ),
        )]
    if n_keys > n_blocks:
        return [Finding(
            rule="LP004",
            severity=Severity.WARNING,
            message=(
                f"checksum table '{table.name}' declares {n_keys} keys "
                f"for a {n_blocks}-block launch; recovery would scan "
                "stale entries"
            ),
            kernel=lp_kernel.name,
            fix_hint="size the table to the exact block count",
        )]
    return []


def _check_lp006_object(lp_kernel) -> list[Finding]:
    """Parity-over-float configuration of a live LazyPersistentKernel."""
    from repro.core.config import ChecksumKind

    config = getattr(lp_kernel, "config", None)
    table = getattr(lp_kernel, "table", None)
    if config is None or ChecksumKind.PARITY not in config.checksums:
        return []
    if config.ordered_int_parity:
        return []
    float_bufs = []
    if table is not None:
        for name in lp_kernel.protected_buffers:
            try:
                dtype = table.memory[name].array.dtype
            except Exception:
                continue
            if np.issubdtype(dtype, np.floating):
                float_bufs.append(name)
    if not float_bufs:
        return []
    return [Finding(
        rule="LP006",
        severity=Severity.ERROR,
        message=(
            "parity (XOR) checksum over float buffers "
            f"{sorted(float_bufs)} with ordered_int_parity=False; raw "
            "float bit patterns defeat the Fig. 2 ordered-integer "
            "masking"
        ),
        kernel=lp_kernel.name,
        fix_hint="keep LPConfig.ordered_int_parity=True for float data",
    )]


def lint_kernel_object(kernel, device=None) -> list[Finding]:
    """Run every object-mode rule over one live kernel.

    ``device`` (optional) enables the strict LP001 form: stores are
    checked against the actual persistence of their target buffers
    instead of just the ``protected=`` declaration.

    A kernel class may declare ``lint_suppressions = {"LPxxx":
    "reason"}``; matching findings are reported as suppressed.
    """
    base, wrappers = _unwrap(kernel)
    try:
        effects = kernel_effects(base)
    except (OSError, TypeError, ValueError):
        return []  # source unavailable (REPL-defined kernel): nothing to say

    findings: list[Finding] = []
    findings.extend(_check_lp001(base, effects, device))
    findings.extend(_check_lp002(base, effects))
    findings.extend(_check_lp003(base, effects))
    findings.extend(_check_lp005(base, effects))
    findings.extend(_check_lp008(base, effects))
    findings.extend(_check_lp009(base, effects))
    findings.extend(_check_lp010(base, effects))
    for wrapper in wrappers:
        if wrapper is not base and hasattr(wrapper, "table"):
            findings.extend(_check_lp004_object(wrapper))
            findings.extend(_check_lp006_object(wrapper))
    suppressions = getattr(type(base), "lint_suppressions", {})
    return apply_suppressions(findings, dict(suppressions))


# ---------------------------------------------------------------------------
# File mode
# ---------------------------------------------------------------------------

def _is_kernel_class(node: ast.ClassDef) -> bool:
    bases = set()
    for b in node.bases:
        if isinstance(b, ast.Name):
            bases.add(b.id)
        elif isinstance(b, ast.Attribute):
            bases.add(b.attr)
    return bool(bases & {"Kernel", "FunctionKernel", "_BatchKernel"}) or any(
        isinstance(item, ast.FunctionDef) and item.name == "run_block"
        for item in node.body
    )


def _class_literal(node: ast.ClassDef, name: str):
    for item in node.body:
        if isinstance(item, ast.Assign):
            for tgt in item.targets:
                if isinstance(tgt, ast.Name) and tgt.id == name:
                    try:
                        return ast.literal_eval(item.value)
                    except ValueError:
                        return None
        elif isinstance(item, ast.AnnAssign) and item.value is not None:
            if isinstance(item.target, ast.Name) and item.target.id == name:
                try:
                    return ast.literal_eval(item.value)
                except ValueError:
                    return None
    return None


def lint_python_text(text: str, path: str = "<source>") -> list[Finding]:
    """File-mode lint of Python source defining kernel classes.

    Four rules run here — LP002 (when the class pins
    ``idempotent = True`` literally and defines no ``recover_block``),
    LP005 (when it pins ``parallel_safe = True`` literally), LP009
    (literal-buffer load→store dataflow under default recovery) and
    LP010 (divergent-barrier shared escapes against a literal
    ``protected_buffers``) — the set that is still sound without live
    objects. Everything else needs resolved buffers and launch shapes,
    which file mode cannot prove, and lplint never guesses.
    """
    findings: list[Finding] = []
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        findings.append(Finding(
            rule="LP002",
            severity=Severity.NOTE,
            message=f"file could not be parsed: {exc}",
            file=path,
            line=exc.lineno,
        ))
        return findings

    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef) or not _is_kernel_class(node):
            continue
        methods = {
            item.name: item
            for item in node.body
            if isinstance(item, ast.FunctionDef)
        }
        run_block = methods.get("run_block")
        if run_block is None:
            continue
        effects = analyze_function_node(
            run_block, method_asts=methods, name=node.name
        )
        suppressions = _class_literal(node, "lint_suppressions") or {}

        if (
            _class_literal(node, "idempotent") is not False
            and "recover_block" not in methods
        ):
            for hazard in effects.idempotence_hazards():
                if "unresolvable" in hazard:
                    continue  # file mode cannot resolve self.* buffers
                findings.append(Finding(
                    rule="LP002",
                    severity=Severity.ERROR,
                    message=(
                        f"region is not provably idempotent ({hazard}) "
                        "but default recovery re-executes it"
                    ),
                    file=path,
                    line=run_block.lineno,
                    kernel=node.name,
                    fix_hint=(
                        "declare idempotent=False or provide a custom "
                        "recover_block"
                    ),
                ))
        protected_literal = _class_literal(node, "protected_buffers")
        protected = set(protected_literal or ())
        if (
            _class_literal(node, "idempotent") is not False
            and "recover_block" not in methods
        ):
            written = effects.written_buffers
            for store in effects.stores:
                if (store.atomic is not None or store.buffer is None
                        or store.buffer not in protected):
                    continue
                bad = sorted(store.value_buffers & (written | {store.buffer}))
                if bad:
                    findings.append(Finding(
                        rule="LP009",
                        severity=Severity.ERROR,
                        message=(
                            f"recovered store to '{store.buffer}' computes "
                            f"its value from a load of {bad} which this "
                            "kernel mutates; re-execution after a partial "
                            "persist double-applies"
                        ),
                        file=path,
                        line=store.lineno,
                        kernel=node.name,
                        fix_hint=(
                            "stage the read-modify-write through a "
                            "scratch buffer, or declare idempotent=False"
                        ),
                    ))
        if effects.divergent_sync_lines:
            first = min(effects.divergent_sync_lines)
            for store in effects.stores:
                if (store.buffer in protected and store.value_uses_shared
                        and store.lineno > first):
                    findings.append(Finding(
                        rule="LP010",
                        severity=Severity.ERROR,
                        message=(
                            f"store to protected buffer '{store.buffer}' "
                            "persists a shared-memory value after a "
                            "syncthreads inside a thread-divergent branch "
                            f"(line {first})"
                        ),
                        file=path,
                        line=store.lineno,
                        kernel=node.name,
                        fix_hint=(
                            "hoist ctx.syncthreads() out of "
                            "thread-dependent control flow"
                        ),
                    ))
        if _class_literal(node, "parallel_safe") is True:
            for store in effects.atomic_stores:
                if store.atomic in ("cas", "exch"):
                    findings.append(Finding(
                        rule="LP005",
                        severity=Severity.ERROR,
                        message=(
                            "class declares parallel_safe = True but "
                            f"run_block uses ctx.atomic_{store.atomic}; "
                            "the parallel launch engine forbids this"
                        ),
                        file=path,
                        line=store.lineno,
                        kernel=node.name,
                        fix_hint="declare parallel_safe = False",
                    ))
        apply_suppressions(
            [f for f in findings if f.kernel == node.name],
            {k: str(v) for k, v in suppressions.items()},
        )
    return findings
