"""Structured diagnostics emitted by the ``lplint`` analyzer.

Every rule violation is a :class:`Finding`: a stable rule id, a
severity, a human-readable message, an optional source location, and a
fix hint. Findings serialize losslessly to the JSON payload the CLI
emits with ``--format json`` (:func:`findings_to_payload` /
:func:`payload_to_findings`), and :func:`validate_payload` pins the
schema so downstream tooling can rely on it.

Suppressions: a kernel class may declare ``lint_suppressions = {"LP002":
"reason"}``. Suppressed findings are still reported (with the
documented reason attached) but do not affect the exit code — the
analyzer never silently drops a verdict.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

#: Schema version of the JSON payload.
PAYLOAD_VERSION = 1


class Severity(enum.Enum):
    """How bad a finding is; only ERROR and WARNING gate CI."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"


#: Rule id -> one-line description (the lint's public contract).
RULES: dict[str, str] = {
    "LP001": "persistent/protected store not covered by any "
             "lpcuda_checksum directive or protected= declaration",
    "LP002": "non-idempotent region paired with default re-execution "
             "recovery",
    "LP003": "cross-block write race on a protected buffer "
             "(per-block write sets are not disjoint)",
    "LP004": "checksum-table sizing hazard (nelems vs. grid size)",
    "LP005": "kernel uses atomics/CAS/host-visible effects while "
             "declaring parallel_safe = True",
    "LP006": "parity (XOR) checksum over float stores without the "
             "ordered-integer conversion",
    "LP007": "static verdict contradicted by a dynamic oracle "
             "(re-execution or crash-state enumeration)",
    "LP008": "cross-block write race to the same NVM data without "
             "atomics (overlapping per-block write sets)",
    "LP009": "recovery-idempotence violation: a recovered store reads "
             "a location the kernel itself mutates",
    "LP010": "shared-memory value escapes to a persistent store after "
             "divergent syncthreads",
}


@dataclass
class Finding:
    """One diagnostic produced by a lint rule."""

    rule: str
    severity: Severity
    message: str
    file: str | None = None
    line: int | None = None
    kernel: str | None = None
    fix_hint: str | None = None
    suppressed: bool = False
    suppress_reason: str | None = None

    def __post_init__(self) -> None:
        if self.rule not in RULES:
            raise ValueError(f"unknown lint rule id {self.rule!r}")

    @property
    def location(self) -> str:
        """``file:line`` text, best-effort."""
        parts = []
        if self.file:
            parts.append(self.file)
        if self.line is not None:
            parts.append(str(self.line))
        return ":".join(parts) if parts else "<builtin>"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "kernel": self.kernel,
            "fix_hint": self.fix_hint,
            "suppressed": self.suppressed,
            "suppress_reason": self.suppress_reason,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            rule=data["rule"],
            severity=Severity(data["severity"]),
            message=data["message"],
            file=data.get("file"),
            line=data.get("line"),
            kernel=data.get("kernel"),
            fix_hint=data.get("fix_hint"),
            suppressed=bool(data.get("suppressed", False)),
            suppress_reason=data.get("suppress_reason"),
        )


@dataclass
class LintReport:
    """All findings of one lint run plus the targets that were linted."""

    findings: list[Finding] = field(default_factory=list)
    targets: list[str] = field(default_factory=list)

    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)

    @property
    def active(self) -> list[Finding]:
        """Unsuppressed findings that gate the exit code."""
        return [
            f for f in self.findings
            if not f.suppressed and f.severity is not Severity.NOTE
        ]

    @property
    def exit_code(self) -> int:
        return 1 if self.active else 0


def apply_suppressions(
    findings: list[Finding], suppressions: dict[str, str]
) -> list[Finding]:
    """Mark findings whose rule a kernel documents as suppressed."""
    for f in findings:
        reason = suppressions.get(f.rule)
        if reason is not None:
            f.suppressed = True
            f.suppress_reason = reason
    return findings


def finalize_findings(findings: list[Finding]) -> list[Finding]:
    """Deterministic output order: sort by (file, line, rule) and dedupe.

    The CUDA and Python front-ends can both lint the same source (e.g. a
    ``.cu`` file reached through two targets, or an object-mode kernel
    whose class file is also linted); identical findings collapse to one
    so JSON payloads diff cleanly across runs and front-ends.
    """
    seen: set[tuple] = set()
    unique: list[Finding] = []
    for f in findings:
        key = (f.rule, f.severity.value, f.message, f.file, f.line,
               f.kernel, f.suppressed, f.suppress_reason)
        if key in seen:
            continue
        seen.add(key)
        unique.append(f)
    unique.sort(key=lambda f: (f.file or "", f.line or 0, f.rule,
                               f.kernel or "", f.message))
    return unique


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------

def findings_to_payload(report: LintReport) -> dict:
    """The ``--format json`` payload; see :func:`validate_payload`."""
    counts = {s.value: 0 for s in Severity}
    suppressed = 0
    for f in report.findings:
        if f.suppressed:
            suppressed += 1
        else:
            counts[f.severity.value] += 1
    return {
        "version": PAYLOAD_VERSION,
        "targets": list(report.targets),
        "findings": [f.to_dict() for f in report.findings],
        "summary": {**counts, "suppressed": suppressed},
        "exit_code": report.exit_code,
    }


def payload_to_findings(payload: dict) -> LintReport:
    """Inverse of :func:`findings_to_payload` (round-trips losslessly)."""
    validate_payload(payload)
    report = LintReport(targets=list(payload.get("targets", [])))
    report.findings = [Finding.from_dict(d) for d in payload["findings"]]
    return report


def validate_payload(payload: dict) -> None:
    """Pin the JSON schema; raises ``ValueError`` on any deviation."""
    if not isinstance(payload, dict):
        raise ValueError("payload must be an object")
    if payload.get("version") != PAYLOAD_VERSION:
        raise ValueError(f"unsupported payload version: {payload.get('version')!r}")
    for key in ("targets", "findings", "summary", "exit_code"):
        if key not in payload:
            raise ValueError(f"payload missing key {key!r}")
    if not isinstance(payload["findings"], list):
        raise ValueError("findings must be a list")
    severities = {s.value for s in Severity}
    for i, entry in enumerate(payload["findings"]):
        if not isinstance(entry, dict):
            raise ValueError(f"finding #{i} must be an object")
        if entry.get("rule") not in RULES:
            raise ValueError(f"finding #{i} has unknown rule {entry.get('rule')!r}")
        if entry.get("severity") not in severities:
            raise ValueError(
                f"finding #{i} has unknown severity {entry.get('severity')!r}"
            )
        if not isinstance(entry.get("message"), str) or not entry["message"]:
            raise ValueError(f"finding #{i} needs a non-empty message")
        line = entry.get("line")
        if line is not None and not isinstance(line, int):
            raise ValueError(f"finding #{i} line must be int or null")
    summary = payload["summary"]
    expected = severities | {"suppressed"}
    if set(summary) != expected or not all(
        isinstance(v, int) and v >= 0 for v in summary.values()
    ):
        raise ValueError("summary must count error/warning/note/suppressed")


# ---------------------------------------------------------------------------
# Text rendering
# ---------------------------------------------------------------------------

_SEV_ORDER = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.NOTE: 2}


def render_text(report: LintReport) -> str:
    """Human-readable lint report (one finding per line, sorted)."""
    lines: list[str] = []
    ordered = sorted(
        report.findings,
        key=lambda f: (f.suppressed, _SEV_ORDER[f.severity],
                       f.file or "", f.line or 0, f.rule),
    )
    for f in ordered:
        tag = "suppressed" if f.suppressed else f.severity.value
        where = f.location
        kern = f" [{f.kernel}]" if f.kernel else ""
        lines.append(f"{where}: {tag}: {f.rule}{kern}: {f.message}")
        if f.fix_hint and not f.suppressed:
            lines.append(f"    fix: {f.fix_hint}")
        if f.suppressed and f.suppress_reason:
            lines.append(f"    reason: {f.suppress_reason}")
    active = report.active
    n_sup = sum(1 for f in report.findings if f.suppressed)
    lines.append(
        f"lplint: {len(active)} finding(s), "
        f"{n_sup} suppressed, "
        f"{len(report.findings) - len(active) - n_sup} note(s) "
        f"over {len(report.targets)} target(s)"
    )
    return "\n".join(lines)
