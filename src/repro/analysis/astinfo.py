"""AST inspection of Python-DSL kernel bodies.

The Python front-end analogue of the C statement scanner in
:mod:`repro.compiler.idempotence`: given a kernel's ``run_block`` (or a
``kernel_from_function`` body), extract its read / write / atomic /
host-effect sets plus a block-identity taint map, from the function's
abstract syntax tree.

Two resolution modes share the same walker:

* **object mode** — an instantiated kernel is available, so ``self``
  attribute chains (``self.store.keys``) resolve to real buffer names
  via ``getattr``, and helper methods called through ``self`` are
  inlined (``self._find(ctx, key)`` contributes its loads/atomics).
* **file mode** — only source text is available (CI linting a ``.py``
  file); literal buffer names still resolve, helper methods of the same
  class are inlined by name, and everything else stays conservatively
  unresolved.

The taint map drives the LP003 race rule: a store index that provably
depends only on thread identity (never on ``ctx.block_id`` /
``ctx.block_xy`` or anything derived from them) is written identically
by every block — a cross-block write race.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field

#: ``ctx`` attribute names that carry block identity.
_BLOCK_ATTRS = ("block_id", "block_xy", "block_coords")
#: ``ctx`` attribute names that carry *thread* identity (uniform values
#: like ``n_threads`` deliberately excluded).
_THREAD_ATTRS = ("tid", "thread_xy", "lane")
#: Conventional names of the block-context parameter.
_CTX_PARAM_NAMES = ("ctx", "bctx", "context")
#: Maximum depth of ``self.method()`` inlining.
_MAX_INLINE_DEPTH = 4


@dataclass
class StoreOp:
    """One ``ctx.st(...)`` (or atomic) call site."""

    buffer: str | None          # resolved buffer name, None if unknown
    buffer_text: str            # source text of the buffer expression
    index: ast.expr | None
    lineno: int
    atomic: str | None = None   # "add"/"max"/"cas"/"exch" for atomics
    value: ast.expr | None = None
    #: Buffers whose ``ctx.ld`` values flow into the stored value.
    value_buffers: set[str] = field(default_factory=set)
    #: True when the stored value derives from shared memory.
    value_uses_shared: bool = False


@dataclass
class LoadOp:
    """One ``ctx.ld(...)`` call site."""

    buffer: str | None
    buffer_text: str
    lineno: int


@dataclass
class PyKernelEffects:
    """Everything the Python lint rules need about one kernel body."""

    name: str
    stores: list[StoreOp] = field(default_factory=list)
    loads: list[LoadOp] = field(default_factory=list)
    #: Line numbers of ``self.<...> = / += ...`` host-state mutations.
    host_mutations: list[int] = field(default_factory=list)
    #: Line numbers of ``ctx.clwb`` calls (cache-state dependent).
    clwb_lines: list[int] = field(default_factory=list)
    #: Local names whose values (may) depend on block identity.
    block_tainted: set[str] = field(default_factory=set)
    #: Local names whose values (may) depend on thread identity.
    thread_tainted: set[str] = field(default_factory=set)
    #: Local names whose values (may) derive from shared memory.
    shared_tainted: set[str] = field(default_factory=set)
    #: Local name -> buffers whose loaded values flow into it.
    load_sources: dict[str, set[str]] = field(default_factory=dict)
    #: Line numbers of every ``ctx.syncthreads()`` call.
    sync_lines: list[int] = field(default_factory=list)
    #: ``syncthreads`` calls lexically inside an ``if``/``while`` whose
    #: condition depends on thread identity — divergent barriers.
    divergent_sync_lines: list[int] = field(default_factory=list)
    #: True when an unresolvable construct forced conservatism.
    has_unresolved: bool = False

    # -- derived sets ----------------------------------------------------

    @property
    def written_buffers(self) -> set[str]:
        return {s.buffer for s in self.stores if s.buffer is not None}

    @property
    def read_buffers(self) -> set[str]:
        return {ld.buffer for ld in self.loads if ld.buffer is not None}

    @property
    def atomic_stores(self) -> list[StoreOp]:
        return [s for s in self.stores if s.atomic is not None]

    @property
    def uses_cas_or_exch(self) -> bool:
        return any(s.atomic in ("cas", "exch") for s in self.stores)

    def idempotence_hazards(self) -> list[str]:
        """Section IV-A hazards, mirroring the C analysis' wording."""
        hazards: list[str] = []
        for s in self.atomic_stores:
            target = s.buffer or s.buffer_text
            hazards.append(
                f"atomic read-modify-write on '{target}' accumulates "
                "on re-execution"
            )
        for s in self.stores:
            if s.atomic is None and s.buffer is None:
                hazards.append(
                    f"store to unresolvable buffer expression "
                    f"'{s.buffer_text}' cannot be proven idempotent"
                )
        overlap = self.written_buffers & self.read_buffers
        for name in sorted(overlap):
            hazards.append(
                f"buffer '{name}' is both read and written; re-execution "
                "would consume its own output"
            )
        return hazards


def _function_ast(fn) -> ast.FunctionDef:
    source = textwrap.dedent(inspect.getsource(fn))
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    raise ValueError(f"no function definition found for {fn!r}")


def _ctx_param(node: ast.FunctionDef) -> str | None:
    args = [a.arg for a in node.args.args]
    if args and args[0] == "self":
        args = args[1:]
    for a in args:
        if a in _CTX_PARAM_NAMES:
            return a
    return args[0] if args else None


def _attr_chain(node: ast.expr) -> list[str] | None:
    """``self.store.keys`` -> ["self", "store", "keys"]; None if not a chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


class _Resolver:
    """Buffer-expression resolution against an optional instance."""

    def __init__(self, instance=None, fn_globals=None, fn_closure=None):
        self.instance = instance
        self.globals = fn_globals or {}
        self.closure = fn_closure or {}

    def resolve(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        chain = _attr_chain(node)
        if chain is None:
            if isinstance(node, ast.Name):
                value = self.closure.get(node.id, self.globals.get(node.id))
                return self._buffer_name(value)
            return None
        root, *rest = chain
        if root == "self" and self.instance is not None:
            value = self.instance
        elif root in self.closure:
            value = self.closure[root]
        elif root in self.globals:
            value = self.globals[root]
        else:
            return None
        for attr in rest:
            try:
                value = getattr(value, attr)
            except AttributeError:
                return None
        return self._buffer_name(value)

    @staticmethod
    def _buffer_name(value) -> str | None:
        if isinstance(value, str):
            return value
        name = getattr(value, "name", None)
        return name if isinstance(name, str) else None


class _BodyWalker:
    """Collect effects from one function body, inlining self-methods."""

    def __init__(
        self,
        effects: PyKernelEffects,
        resolver: _Resolver,
        method_asts: dict[str, ast.FunctionDef],
    ) -> None:
        self.effects = effects
        self.resolver = resolver
        self.method_asts = method_asts
        self._inlined: set[str] = set()

    # -- taint ----------------------------------------------------------

    def _mentions_block(self, node: ast.expr, ctx_name: str) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute):
                chain = _attr_chain(sub)
                if chain and chain[0] == ctx_name and any(
                    part in _BLOCK_ATTRS for part in chain[1:]
                ):
                    return True
            if isinstance(sub, ast.Call):
                # Any call receiving ctx (or a tainted name) may derive
                # block identity — over-approximate.
                for arg in list(sub.args) + [k.value for k in sub.keywords]:
                    for leaf in ast.walk(arg):
                        if isinstance(leaf, ast.Name) and (
                            leaf.id == ctx_name
                            or leaf.id in self.effects.block_tainted
                        ):
                            return True
            if isinstance(sub, ast.Name) and sub.id in self.effects.block_tainted:
                return True
        return False

    def _mentions_thread(self, node: ast.expr, ctx_name: str) -> bool:
        """Narrow (lexical) thread-identity check: explicit ``ctx.tid``
        style attributes or names already thread-tainted. Deliberately
        does not use the call over-approximation of block taint — LP010
        only fires on provable divergence."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute):
                chain = _attr_chain(sub)
                if chain and chain[0] == ctx_name and any(
                    part in _THREAD_ATTRS for part in chain[1:]
                ):
                    return True
            if isinstance(sub, ast.Name) and sub.id in self.effects.thread_tainted:
                return True
        return False

    def _mentions_shared(self, node: ast.expr, ctx_name: str) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute):
                chain = _attr_chain(sub)
                if chain and chain[0] == ctx_name and "shared" in chain[1:]:
                    return True
            if isinstance(sub, ast.Name) and sub.id in self.effects.shared_tainted:
                return True
        return False

    def _value_sources(self, node: ast.expr, ctx_name: str) -> set[str]:
        """Buffers whose ``ctx.ld`` results flow (lexically) into ``node``."""
        sources: set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                chain = _attr_chain(sub.func)
                if chain and chain[0] == ctx_name and chain[-1] == "ld" and sub.args:
                    resolved = self.resolver.resolve(sub.args[0])
                    sources.add(resolved if resolved is not None
                                else ast.unparse(sub.args[0]))
            if isinstance(sub, ast.Name):
                sources |= self.effects.load_sources.get(sub.id, set())
        return sources

    def _taint_targets(self, target: ast.expr, kind: str = "block") -> None:
        tainted = {
            "block": self.effects.block_tainted,
            "thread": self.effects.thread_tainted,
            "shared": self.effects.shared_tainted,
        }[kind]
        if isinstance(target, ast.Name):
            tainted.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for el in target.elts:
                self._taint_targets(el, kind)

    def _flow_sources(self, target: ast.expr, sources: set[str]) -> None:
        if isinstance(target, ast.Name):
            self.effects.load_sources.setdefault(target.id, set()).update(sources)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for el in target.elts:
                self._flow_sources(el, sources)

    def _taint_pass(self, node: ast.FunctionDef, ctx_name: str) -> None:
        """Propagate block/thread/shared/load taint until fixpoint."""
        for _ in range(10):
            before = (
                set(self.effects.block_tainted),
                set(self.effects.thread_tainted),
                set(self.effects.shared_tainted),
                {k: set(v) for k, v in self.effects.load_sources.items()},
            )
            for sub in ast.walk(node):
                if isinstance(sub, (ast.Assign, ast.AugAssign)):
                    value = sub.value
                    targets = (
                        sub.targets if isinstance(sub, ast.Assign)
                        else [sub.target]
                    )
                    flags = (
                        ("block", self._mentions_block(value, ctx_name)),
                        ("thread", self._mentions_thread(value, ctx_name)),
                        ("shared", self._mentions_shared(value, ctx_name)),
                    )
                    sources = self._value_sources(value, ctx_name)
                    for tgt in targets:
                        for kind, hit in flags:
                            if hit:
                                self._taint_targets(tgt, kind)
                        if sources:
                            self._flow_sources(tgt, sources)
                elif isinstance(sub, (ast.For, ast.comprehension)):
                    iter_node = sub.iter
                    for kind, check in (
                        ("block", self._mentions_block),
                        ("thread", self._mentions_thread),
                        ("shared", self._mentions_shared),
                    ):
                        if check(iter_node, ctx_name):
                            self._taint_targets(sub.target, kind)
            after = (
                self.effects.block_tainted,
                self.effects.thread_tainted,
                self.effects.shared_tainted,
                self.effects.load_sources,
            )
            if (before[0] == after[0] and before[1] == after[1]
                    and before[2] == after[2]
                    and before[3] == {k: set(v) for k, v in after[3].items()}):
                break

    def _divergence_pass(
        self, node: ast.stmt, ctx_name: str, divergent: bool = False
    ) -> None:
        """Record ``syncthreads`` calls under thread-dependent branches."""
        for child in ast.iter_child_nodes(node):
            child_div = divergent
            if isinstance(child, (ast.If, ast.While)):
                child_div = divergent or self._mentions_thread(
                    child.test, ctx_name
                )
            if isinstance(child, ast.Call) and isinstance(
                child.func, ast.Attribute
            ):
                chain = _attr_chain(child.func)
                if (chain and chain[0] == ctx_name
                        and chain[-1] == "syncthreads"):
                    self.effects.sync_lines.append(child.lineno)
                    if divergent:
                        self.effects.divergent_sync_lines.append(child.lineno)
            self._divergence_pass(child, ctx_name, child_div)

    # -- effect extraction ----------------------------------------------

    def walk(self, node: ast.FunctionDef, ctx_name: str, depth: int = 0) -> None:
        self._taint_pass(node, ctx_name)
        self._divergence_pass(node, ctx_name)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._handle_call(sub, ctx_name, depth)
            elif isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for tgt in targets:
                    self._check_host_mutation(tgt, ctx_name)

    def _check_host_mutation(self, target: ast.expr, ctx_name: str) -> None:
        base = target
        if isinstance(base, ast.Subscript):
            base = base.value
        chain = _attr_chain(base)
        if chain and chain[0] == "self" and len(chain) > 1:
            self.effects.host_mutations.append(target.lineno)

    def _handle_call(self, call: ast.Call, ctx_name: str, depth: int) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        owner = func.value
        if isinstance(owner, ast.Name) and owner.id == ctx_name:
            self._handle_ctx_call(call, func.attr)
            return
        if (
            isinstance(owner, ast.Name)
            and owner.id == "self"
            and func.attr in self.method_asts
            and depth < _MAX_INLINE_DEPTH
            and func.attr not in self._inlined
        ):
            self._inlined.add(func.attr)
            callee = self.method_asts[func.attr]
            callee_ctx = _ctx_param(callee) or ctx_name
            self.walk(callee, callee_ctx, depth + 1)

    def _handle_ctx_call(self, call: ast.Call, attr: str) -> None:
        args = call.args
        ctx_name = call.func.value.id  # guarded by caller

        def arg(i: int) -> ast.expr | None:
            return args[i] if len(args) > i else None

        def store(value: ast.expr | None, atomic: str | None = None) -> None:
            buf = arg(0)
            if buf is None:
                return
            if value is None:
                for kw in call.keywords:
                    if kw.arg in ("values", "value"):
                        value = kw.value
                        break
            self.effects.stores.append(StoreOp(
                buffer=self.resolver.resolve(buf),
                buffer_text=ast.unparse(buf),
                index=arg(1),
                lineno=call.lineno,
                atomic=atomic,
                value=value,
                value_buffers=(
                    self._value_sources(value, ctx_name)
                    if value is not None else set()
                ),
                value_uses_shared=(
                    value is not None
                    and self._mentions_shared(value, ctx_name)
                ),
            ))

        if attr == "st":
            store(arg(2))
        elif attr == "ld":
            buf = arg(0)
            if buf is None:
                return
            self.effects.loads.append(LoadOp(
                buffer=self.resolver.resolve(buf),
                buffer_text=ast.unparse(buf),
                lineno=call.lineno,
            ))
        elif attr in ("atomic_add", "atomic_max", "atomic_cas", "atomic_exch"):
            store(arg(3) if attr == "atomic_cas" else arg(2),
                  atomic=attr.removeprefix("atomic_"))
        elif attr == "clwb":
            self.effects.clwb_lines.append(call.lineno)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def analyze_kernel_callable(fn, instance=None, name=None) -> PyKernelEffects:
    """Analyze a live kernel callable (``run_block`` or a DSL body).

    ``instance`` (the kernel object) enables ``self`` attribute
    resolution and helper-method inlining.
    """
    node = _function_ast(fn)
    ctx_name = _ctx_param(node)
    effects = PyKernelEffects(name=name or getattr(fn, "__qualname__", "kernel"))
    if ctx_name is None:
        effects.has_unresolved = True
        return effects

    closure: dict[str, object] = {}
    raw_fn = inspect.unwrap(fn)
    base_fn = getattr(raw_fn, "__func__", raw_fn)
    if getattr(base_fn, "__closure__", None):
        closure = {
            cell_name: cell.cell_contents
            for cell_name, cell in zip(
                base_fn.__code__.co_freevars, base_fn.__closure__
            )
        }
    resolver = _Resolver(
        instance=instance,
        fn_globals=getattr(base_fn, "__globals__", {}),
        fn_closure=closure,
    )
    method_asts: dict[str, ast.FunctionDef] = {}
    if instance is not None:
        for cls in type(instance).__mro__:
            for mname, member in vars(cls).items():
                if callable(member) and mname not in method_asts:
                    try:
                        method_asts[mname] = _function_ast(member)
                    except (OSError, TypeError, ValueError):
                        continue
    walker = _BodyWalker(effects, resolver, method_asts)
    walker.walk(node, ctx_name)
    return effects


def analyze_function_node(
    node: ast.FunctionDef,
    method_asts: dict[str, ast.FunctionDef] | None = None,
    name: str | None = None,
) -> PyKernelEffects:
    """File-mode analysis of a parsed function definition.

    Only literal buffer names resolve; ``self`` attribute chains stay
    unresolved (conservative) but same-class helper methods named in
    ``method_asts`` are still inlined.
    """
    ctx_name = _ctx_param(node)
    effects = PyKernelEffects(name=name or node.name)
    if ctx_name is None:
        effects.has_unresolved = True
        return effects
    walker = _BodyWalker(effects, _Resolver(), method_asts or {})
    walker.walk(node, ctx_name)
    return effects


def is_block_independent(
    index: ast.expr | None,
    effects: PyKernelEffects,
    ctx_name_hint: str | None = None,
) -> bool:
    """True iff a store index *provably* ignores block identity.

    The LP003 direction of conservatism: return ``False`` (no finding)
    whenever anything is uncertain. Only an index built purely from
    thread identity (``ctx.tid``), numeric constants, ``self``
    attributes (launch constants, identical across blocks) and
    ``np.*``/``numpy.*`` calls over such values is provably the same
    for every block.
    """
    if index is None:
        return False
    for sub in ast.walk(index):
        if isinstance(sub, ast.Name) and sub.id in effects.block_tainted:
            return False
        if isinstance(sub, ast.Attribute):
            chain = _attr_chain(sub)
            if chain and any(part in _BLOCK_ATTRS for part in chain):
                return False
    # Anything unrecognized makes the index "unknown", not "independent".
    allowed_call_roots = {"np", "numpy"}
    for sub in ast.walk(index):
        if isinstance(sub, ast.Call):
            chain = _attr_chain(sub.func)
            if not chain or chain[0] not in allowed_call_roots:
                return False
        elif isinstance(sub, ast.Name):
            if sub.id in _CTX_PARAM_NAMES or sub.id == (ctx_name_hint or "ctx"):
                continue  # ctx.tid-style attributes are thread-only
            if sub.id in ("self", "np", "numpy"):
                continue
            # A local whose provenance we did not track: unknown.
            if sub.id not in effects.block_tainted:
                return False
    return True
