"""lplint rules over the CUDA-like directive front-end.

Operates on a parsed :class:`~repro.compiler.model.ProgramSource`.
Rules implemented here: LP001 (uncovered persistent store), LP002
(non-idempotent region with default re-execution recovery), LP003
(cross-block write race on a covered store), LP004 (checksum-table
sizing vs. grid size), LP006 (parity-only checksum over float stores)
and LP008 (block identity wrapped modulo K < grid — overlapping
per-block write sets). LP005 is a Python-front-end rule — the
directive compiler has no ``parallel_safe`` declaration to contradict;
LP009/LP010 need the Python AST's value dataflow.

All rules follow the analyzer's conservatism contract: a rule fires
only on *provable* violations; anything unresolvable (symbolic grid
sizes, slices the compiler cannot follow) is skipped, never guessed.
"""

from __future__ import annotations

import re

from repro.analysis.findings import Finding, Severity
from repro.compiler.idempotence import analyze_kernel_source, scan_statement
from repro.compiler.model import ChecksumDirective, KernelSource, ProgramSource
from repro.compiler.slicing import identifiers, parse_store_target, statement_definition
from repro.errors import SliceError

_LAUNCH_RE = re.compile(r"(?<![\w.])([A-Za-z_]\w*)\s*<<<\s*([^,>]+)\s*,")
_DIM3_RE = re.compile(r"(?<![\w.])dim3\s+([A-Za-z_]\w*)\s*\(([^)]*)\)")
_SAFE_EXPR_RE = re.compile(r"^[\d+\-*/() \t]+$")
_FLOAT_TYPES = ("float", "double")


def _normalize(stmt: str) -> str:
    return re.sub(r"\s+", "", stmt).rstrip(";")


def _param_types(kernel: KernelSource) -> dict[str, str]:
    """Parameter name -> declared type text (e.g. ``float *``)."""
    types: dict[str, str] = {}
    for part in kernel.params.split(","):
        part = part.strip()
        if not part:
            continue
        m = re.match(r"^(.*?)([A-Za-z_]\w*)\s*$", part)
        if m:
            types[m.group(2)] = m.group(1).strip()
    return types


def _pointer_params(kernel: KernelSource) -> set[str]:
    return {n for n, t in _param_types(kernel).items() if "*" in t}


def _covered_statements(kernel: KernelSource) -> set[str]:
    return {
        _normalize(d.target_statement)
        for d in kernel.checksums
        if d.target_statement
    }


def _eval_const(expr: str, bindings: dict[str, int]) -> int | None:
    """Integer value of a grid/nelems expression, or None if symbolic."""
    text = expr
    for name, value in sorted(bindings.items(), key=lambda kv: -len(kv[0])):
        text = re.sub(rf"(?<![\w.]){re.escape(name)}(?![\w.(])", str(value), text)
    text = text.strip()
    if not text or not _SAFE_EXPR_RE.match(text):
        return None
    try:
        value = eval(text, {"__builtins__": {}})  # noqa: S307 - digits/ops only
    except Exception:
        return None
    return int(value) if isinstance(value, (int, float)) else None


def _grid_bindings(program: ProgramSource) -> dict[str, int]:
    """``name.x``/``name.y`` values for every constant ``dim3`` decl."""
    bindings: dict[str, int] = {}
    for line in program.lines:
        for m in _DIM3_RE.finditer(line):
            name, args = m.group(1), [a.strip() for a in m.group(2).split(",")]
            dims = []
            for a in args:
                v = _eval_const(a, {})
                if v is None:
                    dims = []
                    break
                dims.append(v)
            if dims:
                while len(dims) < 3:
                    dims.append(1)
                bindings[f"{name}.x"] = dims[0]
                bindings[f"{name}.y"] = dims[1]
                bindings[f"{name}.z"] = dims[2]
    return bindings


def _launch_blocks(program: ProgramSource, kernel_name: str) -> int | None:
    """Block count of the kernel's launch, when statically constant."""
    bindings = _grid_bindings(program)
    for line in program.lines:
        for m in _LAUNCH_RE.finditer(line):
            if m.group(1) != kernel_name:
                continue
            grid = m.group(2).strip()
            direct = _eval_const(grid, {})
            if direct is not None:
                return direct
            gx = bindings.get(f"{grid}.x")
            gy = bindings.get(f"{grid}.y", 1)
            gz = bindings.get(f"{grid}.z", 1)
            if gx is not None:
                return gx * gy * gz
    return None


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

def _check_lp001(
    program: ProgramSource, kernel: KernelSource, path: str
) -> list[Finding]:
    """Persistent (pointer-param) stores must be checksum-covered."""
    findings: list[Finding] = []
    covered = _covered_statements(kernel)
    pointers = _pointer_params(kernel)
    for offset, line in enumerate(kernel.body):
        stmt = line.strip()
        if not stmt or stmt.startswith(("#", "//")):
            continue
        if _normalize(stmt) in covered:
            continue
        eff = scan_statement(stmt)
        hit = {a for a, _op in eff.writes} | {a for _f, a in eff.atomics}
        for array in sorted(hit & pointers):
            findings.append(Finding(
                rule="LP001",
                severity=Severity.ERROR,
                message=(
                    f"store to persistent array '{array}' is not covered "
                    "by any lpcuda_checksum directive"
                ),
                file=path,
                line=kernel.body_start_line + offset,
                kernel=kernel.name,
                fix_hint=(
                    "add '#pragma nvm lpcuda_checksum(...)' immediately "
                    "before the store, or move the data off the "
                    "persistent heap"
                ),
            ))
    return findings


def _check_lp002(kernel: KernelSource, path: str) -> list[Finding]:
    """Non-idempotent body + default re-execution recovery."""
    if not kernel.checksums:
        return []
    report = analyze_kernel_source(kernel)
    if report.idempotent:
        return []
    return [
        Finding(
            rule="LP002",
            severity=Severity.ERROR,
            message=(
                f"region is not provably idempotent ({hazard}) but the "
                "generated recovery kernel re-executes it"
            ),
            file=path,
            line=kernel.body_start_line,
            kernel=kernel.name,
            fix_hint=(
                "make the region idempotent (write-only outputs, no "
                "compound/atomic updates) or supply a custom recovery "
                "kernel instead of the default re-execution"
            ),
        )
        for hazard in report.hazards
    ]


def _check_lp003(kernel: KernelSource, path: str) -> list[Finding]:
    """Covered store whose index provably ignores block identity."""
    findings: list[Finding] = []
    for directive in kernel.checksums:
        if not directive.target_statement:
            continue
        try:
            target = parse_store_target(directive.target_statement)
        except SliceError:
            continue
        closure = set(identifiers(target.index_expr))
        # Transitive closure over body definitions (backward, to a
        # fixpoint): the same walk slice_for_index does, but tolerant
        # of free variables — LP003 only needs the identifier set.
        for _ in range(len(kernel.body) + 1):
            grew = False
            for line in kernel.body:
                definition = statement_definition(line)
                if definition is None:
                    continue
                name, rhs = definition
                if name in closure:
                    new = identifiers(rhs) - closure
                    if new:
                        closure |= new
                        grew = True
            if not grew:
                break
        if "blockIdx" not in closure:
            findings.append(Finding(
                rule="LP003",
                severity=Severity.ERROR,
                message=(
                    f"protected store '{target.lhs}' has a block-independent "
                    "index: every thread block writes the same elements "
                    "(cross-block write race breaks LP region recovery)"
                ),
                file=path,
                line=directive.line_no + 1,
                kernel=kernel.name,
                fix_hint=(
                    "derive the store index from blockIdx so per-block "
                    "write sets are disjoint"
                ),
            ))
    return findings


_BLOCK_REF_RE = re.compile(r"blockIdx\.[xyz]")
_BLOCK_MOD_RE = re.compile(r"blockIdx\.[xyz]\s*%\s*(\d+)")


def _wrap_modulus(kernel: KernelSource, index_expr: str) -> int | None:
    """Largest K when every ``blockIdx`` reference feeding the index
    sits directly under ``% K`` with a numeric literal; None otherwise."""
    closure = set(identifiers(index_expr))
    texts = [index_expr]
    for _ in range(len(kernel.body) + 1):
        grew = False
        for line in kernel.body:
            definition = statement_definition(line)
            if definition is None:
                continue
            name, rhs = definition
            if name in closure:
                if rhs not in texts:
                    texts.append(rhs)
                new = identifiers(rhs) - closure
                if new:
                    closure |= new
                    grew = True
        if not grew:
            break
    blob = " ; ".join(texts)
    refs = _BLOCK_REF_RE.findall(blob)
    if not refs:
        return None
    mods = _BLOCK_MOD_RE.findall(blob)
    if len(mods) != len(refs):
        return None  # some block reference escapes a constant modulus
    return max(int(k) for k in mods)


def _check_lp008(
    program: ProgramSource, kernel: KernelSource, path: str
) -> list[Finding]:
    """Covered store whose index wraps block identity modulo K < grid.

    Blocks ``b`` and ``b + K`` then write the same elements — a
    cross-block persist race the per-block checksums cannot arbitrate
    (the Python front-end's LP008 proves the same property from
    ``block_output_map`` overlap).
    """
    findings: list[Finding] = []
    n_blocks = _launch_blocks(program, kernel.name)
    if n_blocks is None or n_blocks <= 1:
        return findings
    for directive in kernel.checksums:
        if not directive.target_statement:
            continue
        try:
            target = parse_store_target(directive.target_statement)
        except SliceError:
            continue
        k = _wrap_modulus(kernel, target.index_expr)
        if k is not None and 0 < k < n_blocks:
            findings.append(Finding(
                rule="LP008",
                severity=Severity.ERROR,
                message=(
                    f"protected store '{target.lhs}' wraps block identity "
                    f"modulo {k} but the launch has {n_blocks} blocks: "
                    f"blocks b and b+{k} write the same NVM lines "
                    "without atomics"
                ),
                file=path,
                line=directive.line_no + 1,
                kernel=kernel.name,
                fix_hint=(
                    "remove the modulus (or raise it to the grid size) "
                    "so per-block write sets are disjoint"
                ),
            ))
    return findings


def _check_lp004(
    program: ProgramSource, kernel: KernelSource, path: str
) -> list[Finding]:
    """lpcuda_init nelems vs. the kernel's launch grid."""
    findings: list[Finding] = []
    n_blocks = _launch_blocks(program, kernel.name)
    if n_blocks is None:
        return findings
    bindings = _grid_bindings(program)
    seen: set[str] = set()
    for directive in kernel.checksums:
        if directive.table in seen:
            continue
        seen.add(directive.table)
        try:
            init = program.init_for(directive.table)
        except Exception:
            continue
        nelems = _eval_const(init.nelems_expr, bindings)
        if nelems is None:
            continue
        if nelems < n_blocks:
            findings.append(Finding(
                rule="LP004",
                severity=Severity.ERROR,
                message=(
                    f"checksum table '{directive.table}' is sized for "
                    f"{nelems} elements but the kernel launches "
                    f"{n_blocks} blocks (load factor > 1 overflows "
                    "quadratic/cuckoo probing)"
                ),
                file=path,
                line=init.line_no,
                kernel=kernel.name,
                fix_hint=(
                    "size lpcuda_init nelems to at least the launch's "
                    "block count (e.g. grid.x*grid.y)"
                ),
            ))
        elif nelems > n_blocks:
            findings.append(Finding(
                rule="LP004",
                severity=Severity.WARNING,
                message=(
                    f"checksum table '{directive.table}' declares "
                    f"{nelems} elements for a {n_blocks}-block launch; "
                    "a global-array table indexed by block id would "
                    "leave stale entries"
                ),
                file=path,
                line=init.line_no,
                kernel=kernel.name,
                fix_hint="size lpcuda_init nelems to the exact block count",
            ))
    return findings


def _check_lp006(kernel: KernelSource, path: str) -> list[Finding]:
    """Parity-only checksum over a float store."""
    findings: list[Finding] = []
    types = _param_types(kernel)
    for directive in kernel.checksums:
        if tuple(directive.checksum_types) != ("^",):
            continue
        if not directive.target_statement:
            continue
        try:
            target = parse_store_target(directive.target_statement)
        except SliceError:
            continue
        decl = types.get(target.array, "")
        if any(t in decl for t in _FLOAT_TYPES):
            findings.append(Finding(
                rule="LP006",
                severity=Severity.WARNING,
                message=(
                    f"parity (XOR) checksum over float store "
                    f"'{target.lhs}' without a modular component; "
                    "XOR over raw float bits misses sign/exponent "
                    "symmetries unless values pass through the "
                    "ordered-integer conversion"
                ),
                file=path,
                line=directive.line_no,
                kernel=kernel.name,
                fix_hint=(
                    'use checksum type "+^" (modular + parity) or keep '
                    "the ordered-integer conversion enabled"
                ),
            ))
    return findings


def lint_program(program: ProgramSource, path: str = "<source>") -> list[Finding]:
    """Run every CUDA front-end rule over one translation unit.

    LP001 only applies to programs that use Lazy Persistency at all
    (at least one directive anywhere) — plain CUDA files are not
    expected to cover their stores.
    """
    findings: list[Finding] = []
    uses_lp = bool(program.inits) or any(k.checksums for k in program.kernels)
    for kernel in program.kernels:
        if uses_lp:
            findings.extend(_check_lp001(program, kernel, path))
        findings.extend(_check_lp002(kernel, path))
        findings.extend(_check_lp003(kernel, path))
        findings.extend(_check_lp004(program, kernel, path))
        findings.extend(_check_lp006(kernel, path))
        findings.extend(_check_lp008(program, kernel, path))
    return findings


def lint_cuda_text(text: str, path: str = "<source>") -> list[Finding]:
    """Parse + lint CUDA-like source text."""
    from repro.compiler.parser import parse_program

    return lint_program(parse_program(text), path=path)
