"""lplint target dispatch: files, directories, and the builtin fleet.

Three kinds of lint target:

* ``builtin`` — every built-in workload kernel (LP-instrumented, so the
  table-sizing and parity rules run too) plus the three MegaKV kernels,
  constructed on a live device for full buffer resolution;
* a ``.cu``/``.cuh`` file — parsed by the directive compiler and linted
  with the CUDA front-end rules;
* a ``.py`` file — linted in conservative file mode;
* a directory — recursively expands to the above.

``--oracle`` additionally runs every builtin case through the dynamic
oracle (:mod:`repro.analysis.oracle`) and reports any static-vs-dynamic
disagreement. ``--races`` does the same against the bounded crash-state
model checker (:mod:`repro.analysis.crashmc`) for the LP-instrumented
workload cases: a counterexample no race rule predicted is an LP007
error, a race verdict the enumeration cannot reproduce stays as a
conservative note.

Reports are finalized before returning: findings are deduplicated
(identical findings from the CUDA and Python front-ends collapse) and
sorted by ``(file, line, rule)`` so JSON output is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.analysis.cuda_rules import lint_cuda_text
from repro.analysis.findings import (
    Finding,
    LintReport,
    Severity,
    finalize_findings,
)
from repro.analysis.oracle import OracleVerdict, cross_check, dynamic_oracle
from repro.analysis.py_rules import (
    kernel_effects,
    lint_kernel_object,
    lint_python_text,
)

_CUDA_SUFFIXES = {".cu", ".cuh"}
#: Default MegaKV case shape (mirrors the unit-test fixtures).
_KV_CAPACITY = 256
_KV_REQUESTS = 100
_KV_THREADS = 16


@dataclass
class BuiltinCase:
    """One lintable builtin kernel with a reproducible constructor."""

    name: str
    #: Zero-argument constructor returning a fresh ``(device, kernel)``.
    make_case: Callable[[], tuple]


def _workload_case(name: str) -> Callable[[], tuple]:
    def make() -> tuple:
        from repro.compiler.pydsl import lazy_persistent
        from repro.gpu.device import Device
        from repro.workloads import make_workload

        device = Device()
        kernel = make_workload(name, scale="tiny", seed=0).setup(device)
        return device, lazy_persistent(device, kernel)

    return make


def _megakv_device(seed: int = 0):
    import numpy as np

    from repro.gpu.device import Device
    from repro.megakv import MegaKVStore
    from repro.workloads.generators import key_value_records

    device = Device()
    store = MegaKVStore(device, capacity=_KV_CAPACITY)
    keys, vals = key_value_records(
        np.random.default_rng(seed), _KV_REQUESTS
    )
    return device, store, keys, vals


def _megakv_insert_case() -> tuple:
    from repro.megakv.kernels import KVInsertKernel

    device, store, keys, vals = _megakv_device()
    return device, KVInsertKernel(store, keys, vals,
                                  threads_per_block=_KV_THREADS)


def _megakv_delete_case() -> tuple:
    from repro.megakv.kernels import KVDeleteKernel, KVInsertKernel

    device, store, keys, vals = _megakv_device()
    device.launch(KVInsertKernel(store, keys, vals,
                                 threads_per_block=_KV_THREADS))
    return device, KVDeleteKernel(store, keys,
                                  threads_per_block=_KV_THREADS)


def _megakv_search_case() -> tuple:
    from repro.megakv.kernels import (
        KVInsertKernel,
        KVSearchKernel,
        alloc_results,
    )

    device, store, keys, vals = _megakv_device()
    device.launch(KVInsertKernel(store, keys, vals,
                                 threads_per_block=_KV_THREADS))
    alloc_results(device, "results", _KV_REQUESTS)
    return device, KVSearchKernel(store, keys, "results",
                                  threads_per_block=_KV_THREADS)


def builtin_cases() -> list[BuiltinCase]:
    """Every kernel ``lint builtin`` covers, in report order."""
    from repro.workloads import WORKLOADS

    cases = [
        BuiltinCase(name, _workload_case(name)) for name in WORKLOADS
    ]
    cases.append(BuiltinCase("megakv-insert", _megakv_insert_case))
    cases.append(BuiltinCase("megakv-delete", _megakv_delete_case))
    cases.append(BuiltinCase("megakv-search", _megakv_search_case))
    return cases


def static_hazards(kernel) -> list[str]:
    """The static idempotence hazards of a (possibly wrapped) kernel."""
    from repro.analysis.py_rules import _unwrap

    base, _ = _unwrap(kernel)
    return kernel_effects(base).idempotence_hazards()


def lint_builtin(
    oracle: bool = False,
    races: bool = False,
    races_options=None,
) -> tuple[LintReport, dict, dict]:
    """Lint every builtin case; optionally cross-check dynamically.

    Returns the report plus, when ``oracle`` is set, a mapping of case
    name to the :class:`~repro.analysis.oracle.OracleVerdict`, and,
    when ``races`` is set, a mapping of workload name to its
    :class:`~repro.analysis.crashmc.MCReport`.
    """
    from repro.workloads import WORKLOADS

    report = LintReport()
    verdicts: dict[str, OracleVerdict] = {}
    mc_reports: dict = {}
    for case in builtin_cases():
        report.targets.append(f"builtin:{case.name}")
        device, kernel = case.make_case()
        case_findings = lint_kernel_object(kernel, device=device)
        report.extend(case_findings)
        if oracle:
            verdict = dynamic_oracle(case.make_case)
            verdicts[case.name] = verdict
            report.extend(
                cross_check(case.name, static_hazards(kernel), verdict)
            )
        if races and case.name in WORKLOADS:
            from repro.analysis.crashmc import (
                MCOptions,
                check_workload,
                cross_check_mc,
            )

            options = races_options or MCOptions(
                scale="tiny", cache_lines=1, budget=200
            )
            mc = check_workload(case.name, options)
            mc_reports[case.name] = mc
            report.extend(cross_check_mc(case.name, case_findings, mc))
    report.findings = finalize_findings(report.findings)
    return report, verdicts, mc_reports


def lint_file(path: Path) -> list[Finding]:
    text = path.read_text()
    rel = str(path)
    if path.suffix in _CUDA_SUFFIXES:
        try:
            return lint_cuda_text(text, path=rel)
        except Exception as exc:
            return [Finding(
                rule="LP001",
                severity=Severity.NOTE,
                message=f"directive parse failed; file skipped: {exc}",
                file=rel,
            )]
    if path.suffix == ".py":
        return lint_python_text(text, path=rel)
    return []


def expand_targets(targets: list[str]) -> list[Path]:
    """Resolve file/directory targets into lintable files."""
    files: list[Path] = []
    for target in targets:
        p = Path(target)
        if p.is_dir():
            for pattern in ("*.cu", "*.cuh", "*.py"):
                files.extend(
                    f for f in sorted(p.rglob(pattern))
                    if "__pycache__" not in f.parts
                )
        elif p.is_file():
            files.append(p)
        else:
            raise FileNotFoundError(f"lint target not found: {target}")
    return files


def run_lint(
    targets: list[str],
    oracle: bool = False,
    races: bool = False,
    races_options=None,
) -> tuple[LintReport, dict, dict]:
    """Lint a mixed target list (``builtin`` and/or paths)."""
    report = LintReport()
    verdicts: dict[str, OracleVerdict] = {}
    mc_reports: dict = {}
    paths = [t for t in targets if t != "builtin"]
    if "builtin" in targets:
        builtin_report, verdicts, mc_reports = lint_builtin(
            oracle=oracle, races=races, races_options=races_options
        )
        report.findings.extend(builtin_report.findings)
        report.targets.extend(builtin_report.targets)
    for path in expand_targets(paths):
        report.targets.append(str(path))
        report.extend(lint_file(path))
    report.findings = finalize_findings(report.findings)
    return report, verdicts, mc_reports
