"""The dynamic oracle: simulator ground truth for static verdicts.

The analyzer's contract is that it can never be *less* conservative
than the machine: whenever static analysis certifies a property, the
simulator must agree. :func:`dynamic_oracle` establishes the machine's
verdict by actually re-executing blocks (the generalization of
:func:`repro.compiler.idempotence.check_idempotent_dynamic` to kernels
whose buffers are bound to a device at construction time), and
:func:`cross_check` turns any static-vs-dynamic disagreement into a
finding:

* static *idempotent* + dynamic *fails* → **LP007 error** — the
  forbidden direction: the analyzer promised a recovery soundness the
  machine disproves.
* static *hazard* + dynamic *passes* → **note** — the allowed
  direction: static conservatism on a dynamically idempotent kernel
  (e.g. MegaKV's insert, whose re-execution stores identical words).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.analysis.findings import Finding, Severity

#: Default number of blocks sampled per kernel when the grid is large.
DEFAULT_SAMPLE = 8


@dataclass
class OracleVerdict:
    """The simulator's idempotence verdict for one kernel."""

    kernel_name: str
    idempotent: bool
    tested_blocks: list[int] = field(default_factory=list)
    failed_blocks: list[int] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel_name,
            "idempotent": self.idempotent,
            "tested_blocks": list(self.tested_blocks),
            "failed_blocks": list(self.failed_blocks),
        }


def sample_blocks(n_blocks: int, limit: int = DEFAULT_SAMPLE) -> list[int]:
    """Deterministic, endpoint-including sample of block ids."""
    if n_blocks <= limit:
        return list(range(n_blocks))
    step = max(1, n_blocks // limit)
    blocks = list(range(0, n_blocks, step))
    if (n_blocks - 1) not in blocks:
        blocks.append(n_blocks - 1)
    return blocks


def dynamic_oracle(
    make_case: Callable[[], tuple],
    blocks: list[int] | None = None,
    sample: int = DEFAULT_SAMPLE,
) -> OracleVerdict:
    """Run each tested block twice on a fresh case; outputs must not move.

    ``make_case`` returns a fresh ``(device, kernel)`` pair per tested
    block — fresh, because a non-idempotent kernel contaminates its
    buffers, and because kernels like MegaKV's bind buffer objects to
    one device at construction. A block fails when its second
    execution changes any protected buffer bit.
    """
    device, kernel = make_case()
    n_blocks = kernel.launch_config().n_blocks
    test_blocks = blocks if blocks is not None else sample_blocks(n_blocks, sample)
    name = kernel.name
    failed: list[int] = []
    first = True
    for block in test_blocks:
        if not first:
            device, kernel = make_case()
        first = False
        device.launch(kernel, block_ids=[block])
        snapshot = {
            buf: device.memory[buf].array.copy()
            for buf in kernel.protected_buffers
        }
        device.launch(kernel, block_ids=[block])
        for buf, before in snapshot.items():
            if not np.array_equal(device.memory[buf].array, before):
                failed.append(block)
                break
    return OracleVerdict(
        kernel_name=name,
        idempotent=not failed,
        tested_blocks=list(test_blocks),
        failed_blocks=failed,
    )


def cross_check(
    kernel_name: str,
    static_hazards: list[str],
    verdict: OracleVerdict,
) -> list[Finding]:
    """Findings for any static-vs-dynamic disagreement.

    ``static_hazards`` empty means the static analysis certified
    idempotence. The forbidden direction (certified but dynamically
    non-idempotent) is an LP007 error; the conservative direction is
    reported as a note so suppression decisions stay auditable.
    """
    statically_idempotent = not static_hazards
    if statically_idempotent and not verdict.idempotent:
        return [Finding(
            rule="LP007",
            severity=Severity.ERROR,
            message=(
                f"static analysis certified '{kernel_name}' idempotent "
                f"but re-executing block(s) {verdict.failed_blocks} "
                "changed protected buffers — the analyzer was less "
                "conservative than the machine"
            ),
            kernel=kernel_name,
            fix_hint=(
                "treat this as an lplint bug: tighten the static "
                "analysis until the oracle agrees"
            ),
        )]
    if not statically_idempotent and verdict.idempotent:
        return [Finding(
            rule="LP007",
            severity=Severity.NOTE,
            message=(
                f"static analysis flagged '{kernel_name}' "
                f"({static_hazards[0]}) but the dynamic oracle found "
                f"block(s) {verdict.tested_blocks} idempotent — "
                "conservative direction, safe to suppress with a "
                "documented reason"
            ),
            kernel=kernel_name,
        )]
    return []
