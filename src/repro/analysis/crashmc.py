"""Bounded crash-state model checker for Lazy Persistency launches.

Every byte that reaches the durable heap moves through exactly one
funnel: :meth:`GlobalMemory._write_back` arms the
:class:`~repro.nvm.mapped.MappedShadow` journal, copies the dirty
lines, and commits. A power failure can therefore land in only three
kinds of places, and the reachable post-crash heap images form a
finite, enumerable space:

* **between write-backs** — some prefix of the write-back events has
  committed, the journal is clean;
* **inside a write-back** — event *t* is armed (EXACT or RANGE), some
  prefix of its lines has been copied, and the line under the cursor
  may itself be torn mid-line;
* **inside a crash-race write-back** — the hardware's last-gasp
  eviction of a subset of then-dirty lines (the lottery
  :meth:`GlobalMemory.crash` models), which is just one more
  arm/copy/commit bracket and can tear the same way.

This module records the event sequence of one real launch through the
``MappedShadow.arm_listener`` hook, deterministically enumerates crash
states along those three axes, prunes states whose heap image (plus
journal descriptor) hashes identically, and runs the *real*
validate -> recover pipeline (:class:`~repro.core.recovery.RecoveryManager`)
on every distinct state. A state that fails to converge — recovery
raises, validation never settles, or the recovered data differs
bit-for-bit from the crash-free reference — is minimized greedily and
reported as a :class:`Counterexample`.

Bounded-exhaustiveness claim (see ``docs/analysis.md``): within the
budget, the enumeration covers every committed-prefix state, every
torn window of every organic write-back event, and a size-ascending
cap of crash-race subsets per crash point. It does **not** enumerate
crash-race subsets beyond ``max_lottery`` per point, interleavings the
single-funnel simulator cannot produce, or journal-only variations
beyond the descriptor hash. Static rules LP008-LP010 are cross-checked
against this enumeration (:func:`cross_check_mc`): static must never
be *less* conservative than the machine.
"""

from __future__ import annotations

import hashlib
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.errors import HarnessError, RecoveryError
from repro.obs import current as _recorder

__all__ = [
    "MCOptions",
    "WritebackEvent",
    "CrashState",
    "Counterexample",
    "MCReport",
    "check_case",
    "check_workload",
    "run_mc",
    "replay_fixture",
    "cross_check_mc",
    "RACE_RULES",
]

#: Static rules whose verdicts the model checker cross-checks. A
#: counterexample with none of these fired (suppressed counts as
#: fired) is a soundness hole in lplint and surfaces as an LP007 ERROR.
RACE_RULES = ("LP002", "LP003", "LP008", "LP009", "LP010")

#: Default per-case candidate budget. Tuned so the small-scale
#: workloads exceed 1000 *distinct* states well inside it.
DEFAULT_BUDGET = 4000


# ---------------------------------------------------------------------------
# Recorded facts
# ---------------------------------------------------------------------------

@dataclass
class WritebackEvent:
    """One arm/copy/commit bracket observed during the recorded launch."""

    index: int
    #: Journal mode the heap chose for this event: ``"exact"`` or
    #: ``"range"``.
    mode: str
    #: Global line ids in copy order.
    line_ids: list[int]
    #: Per-line ``(buffer, lo, hi, new_bytes)`` — the bytes the copy
    #: loop writes, in copy order (parallel to :attr:`line_ids`).
    spans: list[tuple[str, int, int, bytes]]
    #: Dirty lines still pending at the instant this event armed, as
    #: ``line_id -> (buffer, lo, hi, volatile_bytes)`` — the crash-race
    #: lottery pool for a crash at this point.
    pool: dict[int, tuple[str, int, int, bytes]]


@dataclass(frozen=True)
class CrashState:
    """One candidate crash point in the enumerated space.

    Events ``[0, point)`` have committed. ``extras`` are lottery-pool
    lines additionally persisted by a crash-race write-back. ``armed``
    selects the in-flight write (``None`` = journal clean, ``"event"``
    = event ``point`` itself, ``"race"`` = the synthesized crash-race
    event over ``extras``); ``split`` lines of it have been fully
    copied and, when ``torn``, the first ``cut`` bytes of the next
    line as well — a power failure can tear a line copy at any byte.
    """

    point: int
    extras: tuple[int, ...] = ()
    armed: str | None = None
    split: int = 0
    torn: bool = False
    cut: int = 0

    def to_dict(self) -> dict:
        return {
            "point": self.point,
            "extras": list(self.extras),
            "armed": self.armed,
            "split": self.split,
            "torn": self.torn,
            "cut": self.cut,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CrashState":
        return cls(
            point=int(data["point"]),
            extras=tuple(int(x) for x in data.get("extras", ())),
            armed=data.get("armed"),
            split=int(data.get("split", 0)),
            torn=bool(data.get("torn", False)),
            cut=int(data.get("cut", 0)),
        )


@dataclass
class MCOptions:
    """Knobs of one model-checking run (all deterministic)."""

    scale: str = "small"
    seed: int = 7
    config: str = "global-array"
    engine: str = "serial"
    jobs: int | None = None
    #: Small on purpose: a tight write-back cache maximizes eviction
    #: events, which is what grows the reachable crash-state space.
    cache_lines: int = 3
    #: Maximum candidate states composed per case.
    budget: int = DEFAULT_BUDGET
    #: Crash-race subsets enumerated per crash point (size-ascending).
    max_lottery: int = 12
    #: Of those, how many also get torn-window variants.
    max_race_torn: int = 4
    #: Byte granularity of torn-line cut enumeration inside organic
    #: write-back events — a crash can tear a line copy at any byte;
    #: 2-byte steps keep sub-element tears in the space while bounding
    #: the per-span fan-out.
    torn_step: int = 2
    max_rounds: int = 3
    #: Greedy minimization attempts per counterexample.
    minimize_cap: int = 64
    #: Stop exploring a case after this many counterexamples.
    max_counterexamples: int = 3


@dataclass
class Counterexample:
    """A minimized non-converging crash state."""

    case: str
    state: CrashState
    journal: str
    reason: str
    image_digest: str

    def to_dict(self) -> dict:
        return {
            "case": self.case,
            "state": self.state.to_dict(),
            "journal": self.journal,
            "reason": self.reason,
            "image_digest": self.image_digest,
        }


@dataclass
class MCReport:
    """Outcome of model-checking one case."""

    case: str
    n_events: int
    candidates: int
    states_explored: int
    states_pruned: int
    counterexamples: list[Counterexample] = field(default_factory=list)
    elapsed_s: float = 0.0
    budget_exhausted: bool = False

    @property
    def converged(self) -> bool:
        """True when every distinct reachable state converged."""
        return not self.counterexamples

    def to_dict(self) -> dict:
        return {
            "case": self.case,
            "events": self.n_events,
            "candidates": self.candidates,
            "states_explored": self.states_explored,
            "states_pruned": self.states_pruned,
            "budget_exhausted": self.budget_exhausted,
            "converged": self.converged,
            "counterexamples": [c.to_dict() for c in self.counterexamples],
            "elapsed_s": round(self.elapsed_s, 3),
        }


# ---------------------------------------------------------------------------
# Recording
# ---------------------------------------------------------------------------

class _Recording:
    """Collects :class:`WritebackEvent` facts via ``arm_listener``."""

    def __init__(self, memory) -> None:
        self.memory = memory
        self.events: list[WritebackEvent] = []

    def on_arm(self, line_ids: list[int], mode: str) -> None:
        mem = self.memory
        spans: list[tuple[str, int, int, bytes]] = []
        for lid in line_ids:
            buf = mem._buffer_of_line(lid)
            lo, hi = buf.line_byte_range(lid)
            if lo >= hi:
                continue
            spans.append(
                (buf.name, lo, hi, bytes(buf.data.view(np.uint8)[lo:hi]))
            )
        pool: dict[int, tuple[str, int, int, bytes]] = {}
        for lid in mem.cache.dirty_lines:
            buf = mem._buffer_of_line(lid)
            lo, hi = buf.line_byte_range(lid)
            if lo >= hi:
                continue
            pool[int(lid)] = (
                buf.name, lo, hi, bytes(buf.data.view(np.uint8)[lo:hi])
            )
        self.events.append(WritebackEvent(
            index=len(self.events),
            mode=mode,
            line_ids=[int(lid) for lid in line_ids],
            spans=spans,
            pool=pool,
        ))


# ---------------------------------------------------------------------------
# State composition
# ---------------------------------------------------------------------------

def _apply_span(images: dict[str, bytearray],
                span: tuple[str, int, int, bytes],
                cut: int | None = None) -> None:
    name, lo, hi, payload = span
    if cut is not None:
        hi = min(hi, lo + cut)
        payload = payload[: hi - lo]
    images[name][lo:hi] = payload


def _compose(base: dict[str, bytes], events: list[WritebackEvent],
             state: CrashState) -> tuple[dict[str, bytearray], tuple]:
    """Build the heap image a crash at ``state`` leaves behind.

    Returns the per-buffer byte images and the journal descriptor
    (part of the state's identity: a clean journal and an armed one
    over the same bytes recover through different code paths on a
    cold reopen).
    """
    images = {name: bytearray(b) for name, b in base.items()}
    for ev in events[: state.point]:
        for span in ev.spans:
            _apply_span(images, span)

    pool = events[state.point].pool if state.point < len(events) else {}
    journal: tuple = ("clean",)

    if state.armed == "event":
        ev = events[state.point]
        for span in ev.spans[: state.split]:
            _apply_span(images, span)
        if state.torn and state.split < len(ev.spans):
            _apply_span(images, ev.spans[state.split], cut=state.cut)
        journal = (ev.mode, tuple(ev.line_ids), state.split, state.torn,
                   state.cut)
    elif state.armed == "race":
        for lid in state.extras[: state.split]:
            _apply_span(images, pool[lid])
        if state.torn and state.split < len(state.extras):
            span = pool[state.extras[state.split]]
            _apply_span(images, span,
                        cut=state.cut or (span[2] - span[1]) // 2)
        journal = ("exact", state.extras, state.split, state.torn,
                   state.cut)
    else:
        for lid in state.extras:
            _apply_span(images, pool[lid])

    return images, journal


def _digest(images: dict[str, bytearray], journal: tuple) -> str:
    h = hashlib.blake2b(digest_size=16)
    for name in sorted(images):
        h.update(name.encode())
        h.update(images[name])
    h.update(repr(journal).encode())
    return h.hexdigest()


def _candidates(events: list[WritebackEvent],
                options: MCOptions):
    """Deterministic candidate-state generator (three axes per point)."""
    for point in range(len(events) + 1):
        yield CrashState(point)
        if point < len(events):
            ev = events[point]
            for split in range(len(ev.spans) + 1):
                yield CrashState(point, armed="event", split=split)
                if split < len(ev.spans):
                    _, lo, hi, _ = ev.spans[split]
                    for cut in range(options.torn_step, hi - lo,
                                     options.torn_step):
                        yield CrashState(point, armed="event", split=split,
                                         torn=True, cut=cut)
            pool = sorted(ev.pool)
            emitted = 0
            for size in range(1, len(pool) + 1):
                if emitted >= options.max_lottery:
                    break
                for combo in itertools.combinations(pool, size):
                    if emitted >= options.max_lottery:
                        break
                    yield CrashState(point, extras=combo)
                    if emitted < options.max_race_torn:
                        for split in range(len(combo)):
                            yield CrashState(point, extras=combo,
                                             armed="race", split=split)
                            yield CrashState(point, extras=combo,
                                             armed="race", split=split,
                                             torn=True)
                    emitted += 1


# ---------------------------------------------------------------------------
# The pipeline under test
# ---------------------------------------------------------------------------

def _run_state(device, lp_kernel, images: dict[str, bytearray],
               scratch0: dict[str, np.ndarray],
               reference: dict[str, np.ndarray],
               max_rounds: int) -> tuple[bool, str | None]:
    """Restore one crash image and drive validate -> recover -> drain."""
    from repro.core.recovery import RecoveryManager

    mem = device.memory
    mem.cache.drop_all()
    device.crashed = False
    for name, buf in mem.buffers.items():
        if buf.persistent:
            u8 = buf.shadow.view(np.uint8)
            u8[: buf.nbytes] = images[name]
            buf.data[:] = buf.shadow
        else:
            buf.data[:] = scratch0[name]
    lp_kernel.reset_validation()
    try:
        report = RecoveryManager(device, lp_kernel).recover(
            max_rounds=max_rounds
        )
    except RecoveryError as exc:
        return False, f"recovery failed: {exc}"
    if not report.recovered:
        return False, "validation did not converge within the round bound"
    device.drain()
    for name, want in reference.items():
        got = mem[name].data
        if not np.array_equal(got, want):
            n = int(np.count_nonzero(got != want))
            return False, (
                f"buffer {name!r} differs from the crash-free reference "
                f"in {n} element(s) after recovery"
            )
    return True, None


def _minimize(state: CrashState, events, base, runner,
              cap: int) -> tuple[CrashState, str]:
    """Greedy shrink: drop extras, untear, shrink the armed prefix."""
    current = state
    _, reason = runner(current)
    attempts = 0

    def still_fails(cand: CrashState) -> str | None:
        nonlocal attempts
        attempts += 1
        ok, why = runner(cand)
        return None if ok else why

    changed = True
    while changed and attempts < cap:
        changed = False
        for i in range(len(current.extras)):
            if current.armed == "race":
                break  # extras are the armed write itself; handled below
            cand = CrashState(current.point,
                              extras=current.extras[:i]
                              + current.extras[i + 1:],
                              armed=current.armed, split=current.split,
                              torn=current.torn, cut=current.cut)
            why = still_fails(cand)
            if why is not None:
                current, reason, changed = cand, why, True
                break
        if changed or attempts >= cap:
            continue
        if current.torn:
            cand = CrashState(current.point, extras=current.extras,
                              armed=current.armed, split=current.split)
            why = still_fails(cand)
            if why is not None:
                current, reason, changed = cand, why, True
                continue
        if current.armed is not None and current.split > 0:
            cand = CrashState(current.point, extras=current.extras,
                              armed=current.armed, split=current.split - 1,
                              torn=current.torn, cut=current.cut)
            why = still_fails(cand)
            if why is not None:
                current, reason, changed = cand, why, True
                continue
        if current.armed is not None and current.split == 0 \
                and not current.torn:
            cand = CrashState(current.point,
                              extras=() if current.armed == "race"
                              else current.extras)
            why = still_fails(cand)
            if why is not None:
                current, reason, changed = cand, why, True
    return current, reason


# ---------------------------------------------------------------------------
# Case drivers
# ---------------------------------------------------------------------------

def check_case(build: Callable[..., Any], case: str,
               options: MCOptions | None = None) -> MCReport:
    """Model-check one case.

    ``build(shadow)`` must construct the launch deterministically and
    return ``(device, lp_kernel)`` or ``(device, work, lp_kernel)``
    with every allocation already done — the same contract
    :func:`repro.harness.crashproc.build_run` satisfies.
    """
    from repro.harness.tmpdir import ManagedTmpdir
    from repro.nvm.mapped import MappedShadow

    options = options or MCOptions()
    rec = _recorder()
    started = time.monotonic()
    with rec.trace.span("mc.case", cat="mc", track="mc", case=case,
                        budget=options.budget, engine=options.engine):
        with ManagedTmpdir(prefix="repro-mc-") as tmp:
            heap = MappedShadow.create(str(tmp.file("mc-heap.bin")))
            try:
                built = build(heap)
                device, lp_kernel = built[0], built[-1]
                mem = device.memory
                with rec.trace.span("mc.record", cat="mc", track="mc",
                                    case=case):
                    base = {
                        name: bytes(buf.shadow.view(np.uint8)[: buf.nbytes])
                        for name, buf in mem.buffers.items()
                        if buf.persistent
                    }
                    scratch0 = {
                        name: buf.data.copy()
                        for name, buf in mem.buffers.items()
                        if not buf.persistent
                    }
                    recording = _Recording(mem)
                    heap.arm_listener = recording.on_arm
                    device.launch(lp_kernel)
                    device.drain()
                    heap.arm_listener = None
                    reference = {
                        name: mem[name].data.copy()
                        for name in lp_kernel.protected_buffers
                    }
                events = recording.events

                def runner(state: CrashState) -> tuple[bool, str | None]:
                    images, _ = _compose(base, events, state)
                    return _run_state(device, lp_kernel, images, scratch0,
                                      reference, options.max_rounds)

                report = MCReport(case=case, n_events=len(events),
                                  candidates=0, states_explored=0,
                                  states_pruned=0)
                seen: set[str] = set()
                with rec.trace.span("mc.explore", cat="mc", track="mc",
                                    case=case, events=len(events)):
                    for state in _candidates(events, options):
                        if report.candidates >= options.budget:
                            report.budget_exhausted = True
                            break
                        report.candidates += 1
                        images, journal = _compose(base, events, state)
                        digest = _digest(images, journal)
                        if digest in seen:
                            report.states_pruned += 1
                            continue
                        seen.add(digest)
                        report.states_explored += 1
                        ok, _why = _run_state(
                            device, lp_kernel, images, scratch0,
                            reference, options.max_rounds
                        )
                        if ok:
                            continue
                        minimized, reason = _minimize(
                            state, events, base, runner,
                            options.minimize_cap
                        )
                        m_images, m_journal = _compose(base, events,
                                                       minimized)
                        report.counterexamples.append(Counterexample(
                            case=case,
                            state=minimized,
                            journal=m_journal[0]
                            if m_journal[0] == "clean" else m_journal[0],
                            reason=reason,
                            image_digest=_digest(m_images, m_journal),
                        ))
                        if (len(report.counterexamples)
                                >= options.max_counterexamples):
                            break
            finally:
                heap.arm_listener = None
                heap.close()
    report.elapsed_s = time.monotonic() - started
    if rec.metrics.active:
        rec.metrics.inc("mc.states_explored", report.states_explored,
                        case=case)
        rec.metrics.inc("mc.states_pruned", report.states_pruned, case=case)
        rec.metrics.inc("mc.counterexamples",
                        len(report.counterexamples), case=case)
    return report


def check_workload(workload: str,
                   options: MCOptions | None = None) -> MCReport:
    """Model-check one named workload at the given options."""
    from repro.harness.crashproc import ChildSpec, build_run

    options = options or MCOptions()

    def build(shadow):
        spec = ChildSpec(
            workload=workload, scale=options.scale, seed=options.seed,
            config=options.config, engine=options.engine,
            jobs=options.jobs, cache_lines=options.cache_lines,
            heap_path="", ready_path="", phase="launch", trigger=None,
        )
        return build_run(spec, shadow=shadow)

    return check_case(build, workload, options)


def run_mc(workloads: list[str],
           options: MCOptions | None = None) -> dict:
    """Model-check several workloads; one JSON-ready summary dict."""
    options = options or MCOptions()
    reports = [check_workload(name, options) for name in workloads]
    return {
        "schema": 1,
        "budget": options.budget,
        "engine": options.engine,
        "scale": options.scale,
        "seed": options.seed,
        "config": options.config,
        "cache_lines": options.cache_lines,
        "cases": [r.to_dict() for r in reports],
        "total": {
            "states_explored": sum(r.states_explored for r in reports),
            "states_pruned": sum(r.states_pruned for r in reports),
            "counterexamples": sum(len(r.counterexamples)
                                   for r in reports),
        },
        "converged": all(r.converged for r in reports),
    }


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------

def fixture_dict(ce: Counterexample, options: MCOptions,
                 kind: str = "workload") -> dict:
    """Serialize a counterexample for ``tests/fixtures/crashmc/``."""
    return {
        "schema": 1,
        "kind": kind,
        "case": ce.case,
        "scale": options.scale,
        "seed": options.seed,
        "config": options.config,
        "engine": options.engine,
        "cache_lines": options.cache_lines,
        "state": ce.state.to_dict(),
        "journal": ce.journal,
        "reason": ce.reason,
        "image_digest": ce.image_digest,
    }


def replay_fixture(data: dict, build: Callable[..., Any]) -> dict:
    """Re-record a fixture's case and re-run its crash state.

    ``build(shadow)`` must reconstruct the fixture's case exactly (the
    caller owns kind-specific construction). Returns
    ``{"converged": bool, "reason": str|None, "image_digest": str}``
    so regression tests can assert the counterexample still reproduces
    (or, once fixed, no longer does).
    """
    from repro.harness.tmpdir import ManagedTmpdir
    from repro.nvm.mapped import MappedShadow

    if data.get("schema") != 1:
        raise HarnessError(f"unknown crashmc fixture schema: {data!r}")
    state = CrashState.from_dict(data["state"])
    with ManagedTmpdir(prefix="repro-mc-replay-") as tmp:
        heap = MappedShadow.create(str(tmp.file("mc-heap.bin")))
        try:
            built = build(heap)
            device, lp_kernel = built[0], built[-1]
            mem = device.memory
            base = {
                name: bytes(buf.shadow.view(np.uint8)[: buf.nbytes])
                for name, buf in mem.buffers.items() if buf.persistent
            }
            scratch0 = {
                name: buf.data.copy()
                for name, buf in mem.buffers.items() if not buf.persistent
            }
            recording = _Recording(mem)
            heap.arm_listener = recording.on_arm
            device.launch(lp_kernel)
            device.drain()
            heap.arm_listener = None
            reference = {
                name: mem[name].data.copy()
                for name in lp_kernel.protected_buffers
            }
            images, journal = _compose(base, recording.events, state)
            digest = _digest(images, journal)
            ok, reason = _run_state(
                device, lp_kernel, images, scratch0, reference,
                max_rounds=3,
            )
        finally:
            heap.arm_listener = None
            heap.close()
    return {"converged": ok, "reason": reason, "image_digest": digest}


# ---------------------------------------------------------------------------
# Static <-> dynamic cross-check
# ---------------------------------------------------------------------------

def cross_check_mc(case: str, static_findings, report: MCReport) -> list:
    """LP007 findings tying static race verdicts to the enumeration.

    Mirrors the LP007 <-> re-execution oracle contract: a dynamic
    counterexample with *no* static race rule fired (suppressed counts
    as fired) means lplint is less conservative than the machine —
    an ERROR. Static findings the bounded enumeration could not
    reproduce stay, conservatively, as a NOTE.
    """
    from repro.analysis.findings import Finding, Severity

    flagged = sorted({
        f.rule for f in static_findings if f.rule in RACE_RULES
    })
    out: list = []
    if report.counterexamples and not flagged:
        ce = report.counterexamples[0]
        out.append(Finding(
            rule="LP007",
            severity=Severity.ERROR,
            message=(
                f"crash-state enumeration found a non-converging state "
                f"for {case!r} ({ce.reason}) but no static race rule "
                f"({'/'.join(RACE_RULES)}) fired — the static analysis "
                f"is less conservative than the model checker; treat "
                f"this as an lplint bug"
            ),
            kernel=case,
        ))
    elif flagged and not report.counterexamples:
        out.append(Finding(
            rule="LP007",
            severity=Severity.NOTE,
            message=(
                f"static race verdicts {flagged} for {case!r} were not "
                f"reproduced within the bounded enumeration "
                f"({report.states_explored} distinct states"
                f"{', budget exhausted' if report.budget_exhausted else ''}"
                f"); the static rules stay conservative — suppress with "
                f"a documented reason if the hazard is understood"
            ),
            kernel=case,
        ))
    return out
