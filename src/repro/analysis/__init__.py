"""lplint: static Lazy-Persistency correctness analysis.

The paper's recovery guarantee rests on properties that are easy to
violate silently — uncovered persistent stores, non-idempotent regions
behind default re-execution recovery, cross-block write races,
mis-sized checksum tables. This package checks them *statically* over
both kernel front-ends (the CUDA-like directive source and the Python
DSL), emits structured diagnostics (:mod:`repro.analysis.findings`),
and cross-validates every verdict against a dynamic oracle
(:mod:`repro.analysis.oracle`) so the analyzer can never be less
conservative than the machine.

Entry point: ``python -m repro lint <target>``.
"""

from repro.analysis.crashmc import (
    Counterexample,
    CrashState,
    MCOptions,
    MCReport,
    check_case,
    check_workload,
    cross_check_mc,
    replay_fixture,
    run_mc,
)
from repro.analysis.findings import (
    PAYLOAD_VERSION,
    Finding,
    LintReport,
    RULES,
    Severity,
    apply_suppressions,
    finalize_findings,
    findings_to_payload,
    payload_to_findings,
    render_text,
    validate_payload,
)
from repro.analysis.oracle import OracleVerdict, cross_check, dynamic_oracle
from repro.analysis.runner import builtin_cases, lint_builtin, run_lint

__all__ = [
    "Counterexample",
    "CrashState",
    "Finding",
    "LintReport",
    "MCOptions",
    "MCReport",
    "OracleVerdict",
    "PAYLOAD_VERSION",
    "RULES",
    "Severity",
    "apply_suppressions",
    "builtin_cases",
    "check_case",
    "check_workload",
    "cross_check",
    "cross_check_mc",
    "dynamic_oracle",
    "finalize_findings",
    "findings_to_payload",
    "lint_builtin",
    "payload_to_findings",
    "render_text",
    "replay_fixture",
    "run_lint",
    "run_mc",
    "validate_payload",
]
