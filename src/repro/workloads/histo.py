"""HISTO — saturating histogram (Parboil).

Builds a histogram of input samples with bin counts saturating at 255
(Parboil stores the result in bytes). Bandwidth bound: the kernel is a
streaming pass over the input. At paper scale HISTO launches very few
(42) thread blocks, the small-grid extreme of Table III.

LP structure: the classic privatization split — each block histograms
its input chunk into a block-private partial histogram (a disjoint
output slice); the saturating cross-block merge is a separate step
(:meth:`HISTOWorkload.merged_histogram`), as in Parboil's multi-kernel
pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LaunchError
from repro.gpu.device import Device
from repro.gpu.kernel import BlockContext, Kernel, LaunchConfig
from repro.workloads.base import Workload

#: Saturation ceiling of the final merged histogram.
SATURATION = 255

#: (n_samples, n_bins, n_blocks, threads_per_block) per scale.
_SCALE_SHAPES = {
    "tiny": (512, 32, 4, 16),
    "small": (4096, 64, 8, 32),
    "medium": (16384, 128, 16, 64),
}


class HISTOKernel(Kernel):
    """One block histograms one contiguous input chunk."""

    name = "histo"
    protected_buffers = ("histo_partial",)
    idempotent = True
    parallel_safe = True

    def __init__(self, n_samples: int, n_bins: int, n_blocks: int,
                 threads: int) -> None:
        if n_samples % n_blocks:
            raise LaunchError("n_samples must divide evenly across blocks")
        self.n_samples = n_samples
        self.n_bins = n_bins
        self.n_blocks = n_blocks
        self.threads = threads
        self.chunk = n_samples // n_blocks

    def launch_config(self) -> LaunchConfig:
        return LaunchConfig.linear(self.n_blocks, self.threads)

    def block_output_map(self, block_id):
        base = block_id * self.n_bins
        return {"histo_partial": base + np.arange(self.n_bins)}

    def run_block(self, ctx: BlockContext) -> None:
        b = ctx.block_id
        idx = np.arange(b * self.chunk, (b + 1) * self.chunk)
        samples = ctx.ld("histo_in", idx)

        # Threads accumulate into a shared privatized histogram; the
        # simulator folds the whole chunk at once (shared-memory
        # atomics inside one block are race-free by construction here).
        shared_hist = ctx.shared.alloc("hist", (self.n_bins,), np.int64)
        shared_hist += np.bincount(samples.astype(np.int64),
                                   minlength=self.n_bins)
        ctx.charge_shared(self.chunk * 8)
        ctx.flops(self.chunk / max(ctx.n_threads, 1))
        ctx.syncthreads()

        out_idx = b * self.n_bins + np.arange(self.n_bins)
        ctx.st("histo_partial", out_idx, shared_hist.astype(np.uint32),
               slots=np.arange(self.n_bins) % ctx.n_threads)


class HISTOWorkload(Workload):
    """Privatized saturating histogram."""

    name = "histo"
    exact = True

    def __init__(self, scale: str = "small", seed: int = 0) -> None:
        super().__init__(scale, seed)
        (self.n_samples, self.n_bins,
         self.n_blocks, self.threads) = _SCALE_SHAPES[scale]
        # Parboil's input is heavily skewed; a Zipf-ish skew stresses
        # the same few bins.
        raw = self.rng.zipf(1.5, size=self.n_samples)
        self._samples = (raw % self.n_bins).astype(np.int32)

    def setup(self, device: Device) -> HISTOKernel:
        device.alloc("histo_in", (self.n_samples,), np.int32,
                     persistent=True, init=self._samples)
        device.alloc("histo_partial", (self.n_blocks * self.n_bins,),
                     np.uint32, persistent=True)
        return HISTOKernel(self.n_samples, self.n_bins, self.n_blocks,
                           self.threads)

    def reference(self) -> dict[str, np.ndarray]:
        chunk = self.n_samples // self.n_blocks
        out = np.zeros(self.n_blocks * self.n_bins, dtype=np.uint32)
        for b in range(self.n_blocks):
            part = np.bincount(self._samples[b * chunk:(b + 1) * chunk],
                               minlength=self.n_bins)
            out[b * self.n_bins:(b + 1) * self.n_bins] = part
        return {"histo_partial": out}

    def merged_histogram(self, device: Device) -> np.ndarray:
        """Saturating merge of the per-block partials (uint8 result)."""
        partials = device.memory["histo_partial"].array
        total = partials.reshape(-1, self.n_bins).sum(axis=0)
        return np.minimum(total, SATURATION).astype(np.uint8)
