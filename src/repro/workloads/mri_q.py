"""MRI-Q — Q-matrix computation for MRI reconstruction (Parboil).

For every voxel ``x``, accumulates ``Q(x) = Σ_k |φ(k)|² · e^{2πi k·x}``
over all k-space sample points, split into real (cos) and imaginary
(sin) parts. Instruction-throughput bound: trigonometry dominates.

LP structure: one thread per voxel, blocks own disjoint voxel ranges;
both output buffers (``Qr``, ``Qi``) are protected, demonstrating LP
over multiple protected stores per region.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LaunchError
from repro.gpu.device import Device
from repro.gpu.kernel import BlockContext, Kernel, LaunchConfig
from repro.workloads.base import Workload
from repro.workloads.generators import unit_floats

#: (n_voxels, n_ksamples, threads_per_block) per scale.
_SCALE_SHAPES = {
    "tiny": (64, 32, 16),
    "small": (512, 128, 64),
    "medium": (2048, 512, 128),
}

#: k-space samples are consumed in chunks of this size.
_CHUNK = 32

_TWO_PI = np.float32(2.0 * np.pi)


class MRIQKernel(Kernel):
    """One thread accumulates one voxel's Q value over all k samples."""

    name = "mri-q"
    protected_buffers = ("mriq_qr", "mriq_qi")
    idempotent = True
    parallel_safe = True

    def __init__(self, n_voxels: int, n_k: int, threads: int) -> None:
        if n_voxels % threads:
            raise LaunchError("n_voxels must be a multiple of block size")
        self.n_voxels = n_voxels
        self.n_k = n_k
        self.threads = threads

    def launch_config(self) -> LaunchConfig:
        return LaunchConfig.linear(self.n_voxels // self.threads, self.threads)

    def block_output_map(self, block_id):
        vox = block_id * self.threads + np.arange(self.threads)
        return {"mriq_qr": vox, "mriq_qi": vox.copy()}

    def run_block(self, ctx: BlockContext) -> None:
        vox = ctx.block_id * self.threads + ctx.tid
        vx = ctx.ld("mriq_x", vox * 3 + 0)
        vy = ctx.ld("mriq_x", vox * 3 + 1)
        vz = ctx.ld("mriq_x", vox * 3 + 2)

        qr = np.zeros(ctx.n_threads, dtype=np.float32)
        qi = np.zeros(ctx.n_threads, dtype=np.float32)
        for k0 in range(0, self.n_k, _CHUNK):
            k_idx = np.arange(k0, min(k0 + _CHUNK, self.n_k))
            kx = ctx.ld("mriq_k", k_idx * 4 + 0)
            ky = ctx.ld("mriq_k", k_idx * 4 + 1)
            kz = ctx.ld("mriq_k", k_idx * 4 + 2)
            mag = ctx.ld("mriq_k", k_idx * 4 + 3)
            phase = _TWO_PI * (
                vx[:, None] * kx[None, :]
                + vy[:, None] * ky[None, :]
                + vz[:, None] * kz[None, :]
            )
            qr += (mag[None, :] * np.cos(phase)).sum(axis=1,
                                                     dtype=np.float32)
            qi += (mag[None, :] * np.sin(phase)).sum(axis=1,
                                                     dtype=np.float32)
            ctx.flops(14 * k_idx.size)  # 3 MACs + 2 trig + 2 MACs per k

        ctx.st("mriq_qr", vox, qr, slots=ctx.tid)
        ctx.st("mriq_qi", vox, qi, slots=ctx.tid)


class MRIQWorkload(Workload):
    """Q-matrix accumulation over k-space samples."""

    name = "mri-q"
    exact = False

    def __init__(self, scale: str = "small", seed: int = 0) -> None:
        super().__init__(scale, seed)
        self.n_voxels, self.n_k, self.threads = _SCALE_SHAPES[scale]
        self._x = unit_floats(self.rng, self.n_voxels * 3)
        k = np.empty((self.n_k, 4), dtype=np.float32)
        k[:, :3] = unit_floats(self.rng, (self.n_k, 3))
        # |phi|^2 magnitudes are non-negative.
        k[:, 3] = self.rng.random(self.n_k, dtype=np.float32)
        self._k = k

    def setup(self, device: Device) -> MRIQKernel:
        device.alloc("mriq_x", (self.n_voxels * 3,), np.float32,
                     persistent=True, init=self._x)
        device.alloc("mriq_k", (self.n_k * 4,), np.float32,
                     persistent=True, init=self._k.reshape(-1))
        device.alloc("mriq_qr", (self.n_voxels,), np.float32, persistent=True)
        device.alloc("mriq_qi", (self.n_voxels,), np.float32, persistent=True)
        return MRIQKernel(self.n_voxels, self.n_k, self.threads)

    def reference(self) -> dict[str, np.ndarray]:
        x = self._x.reshape(self.n_voxels, 3).astype(np.float64)
        k = self._k.astype(np.float64)
        phase = 2.0 * np.pi * (x @ k[:, :3].T)
        qr = (k[:, 3] * np.cos(phase)).sum(axis=1)
        qi = (k[:, 3] * np.sin(phase)).sum(axis=1)
        return {
            "mriq_qr": qr.astype(np.float32),
            "mriq_qi": qi.astype(np.float32),
        }
