"""Workload abstraction: inputs + kernel + reference output.

A :class:`Workload` packages everything a benchmark needs:

* deterministic, seeded input generation;
* device buffer setup (:meth:`setup` allocates inputs/outputs and
  returns the kernel to launch);
* a pure-numpy :meth:`reference` against which outputs are checked;
* scale presets, so tests run tiny instances while the paper-scale
  shapes live in :mod:`repro.bench.profiles`.

Every workload is written so each thread block owns a **disjoint slice
of the output** — the structural property that makes thread blocks
associative LP regions (Section IV-A) and re-execution idempotent.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import LaunchError
from repro.gpu.device import Device
from repro.gpu.kernel import Kernel

#: Named instance sizes. "tiny" suits property tests; "small" is the
#: default functional test size; "medium" gives benchmarks more signal.
SCALES = ("tiny", "small", "medium")


class Workload(abc.ABC):
    """One benchmark program: inputs, kernel, and expected outputs."""

    name: str = "workload"
    #: Whether outputs must match the reference exactly (integer
    #: kernels) or within floating-point tolerance.
    exact: bool = False

    def __init__(self, scale: str = "small", seed: int = 0) -> None:
        if scale not in SCALES:
            raise LaunchError(f"unknown scale {scale!r}; pick from {SCALES}")
        self.scale = scale
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    @abc.abstractmethod
    def setup(self, device: Device) -> Kernel:
        """Allocate device buffers and return the kernel to launch."""

    @abc.abstractmethod
    def reference(self) -> dict[str, np.ndarray]:
        """Expected contents of each protected output buffer."""

    # ------------------------------------------------------------------
    # Verification helpers
    # ------------------------------------------------------------------

    def verify(self, device: Device, persisted: bool = False) -> None:
        """Assert outputs match the reference; raises ``AssertionError``.

        ``persisted=True`` checks the NVM image instead of the volatile
        one (e.g. after a drain).
        """
        for name, expect in self.reference().items():
            buf = device.memory[name]
            got = buf.nvm_array if persisted else buf.array
            if self.exact:
                if not np.array_equal(got, expect.reshape(got.shape)):
                    bad = np.flatnonzero(
                        got.reshape(-1) != expect.reshape(-1)
                    )
                    raise AssertionError(
                        f"{self.name}: buffer {name!r} mismatches at "
                        f"{bad.size} elements (first: {bad[:5]})"
                    )
            else:
                if not np.allclose(got, expect.reshape(got.shape),
                                   rtol=1e-4, atol=1e-5):
                    err = np.abs(
                        got.astype(np.float64)
                        - expect.reshape(got.shape).astype(np.float64)
                    )
                    raise AssertionError(
                        f"{self.name}: buffer {name!r} max abs error "
                        f"{err.max():.3g}"
                    )

    def matches(self, device: Device, persisted: bool = False) -> bool:
        """Boolean form of :meth:`verify`."""
        try:
            self.verify(device, persisted=persisted)
        except AssertionError:
            return False
        return True
