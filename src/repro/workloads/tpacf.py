"""TPACF — two-point angular correlation function (Parboil).

Counts pairs of sky points by angular separation: every pair's dot
product is binned into a histogram. Instruction-throughput bound
(Table I): the kernel is a dense O(n²) dot-product sweep with almost no
output traffic.

LP structure: each thread block owns one *privatized partial
histogram*, written to a block-disjoint slice of the output — the
standard Parboil privatization pattern, which is exactly what makes the
blocks associative LP regions. (The final cross-block merge is a
host-side helper; the paper instruments the main kernel.)

Integer bin counts make this workload exact.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LaunchError
from repro.gpu.device import Device
from repro.gpu.kernel import BlockContext, Kernel, LaunchConfig
from repro.workloads.base import Workload

#: (n_points, threads_per_block, n_bins) per scale.
_SCALE_SHAPES = {
    "tiny": (64, 16, 8),
    "small": (256, 32, 8),
    "medium": (1024, 64, 16),
}

#: Points are compared in chunks of this many partners per step.
_CHUNK = 64


def _unit_sphere_points(rng: np.random.Generator, n: int) -> np.ndarray:
    """Random float32 unit vectors (sky directions)."""
    v = rng.normal(size=(n, 3)).astype(np.float32)
    v /= np.linalg.norm(v, axis=1, keepdims=True).astype(np.float32)
    return v.astype(np.float32)


def _bin_edges(n_bins: int) -> np.ndarray:
    """Interior bin edges over the dot-product range [-1, 1]."""
    return np.linspace(-1.0, 1.0, n_bins + 1, dtype=np.float32)[1:-1]


class TPACFKernel(Kernel):
    """One block histograms all pairs (i in block-chunk, j in all)."""

    name = "tpacf"
    protected_buffers = ("tpacf_hist",)
    idempotent = True
    parallel_safe = True

    def __init__(self, n_points: int, threads: int, n_bins: int) -> None:
        if n_points % threads:
            raise LaunchError("n_points must be a multiple of block size")
        self.n_points = n_points
        self.threads = threads
        self.n_bins = n_bins
        self._edges = _bin_edges(n_bins)

    def launch_config(self) -> LaunchConfig:
        return LaunchConfig.linear(self.n_points // self.threads, self.threads)

    def block_output_map(self, block_id):
        base = block_id * self.n_bins
        return {"tpacf_hist": base + np.arange(self.n_bins)}

    def run_block(self, ctx: BlockContext) -> None:
        n, t, nb = self.n_points, self.threads, self.n_bins
        b = ctx.block_id
        my_idx = b * t + ctx.tid  # each thread owns one "i" point

        # Fetch this block's points (x, y, z are separate strided loads).
        mine = np.stack(
            [ctx.ld("tpacf_pts", my_idx * 3 + c) for c in range(3)], axis=1
        )

        hist = np.zeros(nb, dtype=np.int64)
        for j0 in range(0, n, _CHUNK):
            j_idx = np.arange(j0, min(j0 + _CHUNK, n))
            partners = np.stack(
                [ctx.ld("tpacf_pts", j_idx * 3 + c) for c in range(3)], axis=1
            )
            dots = mine @ partners.T  # (t, chunk) float32
            bins = np.digitize(dots.ravel(), self._edges)
            hist += np.bincount(bins, minlength=nb)
            # 2*3 flops per pair (dot) + compare/bin work.
            ctx.flops((2 * 3 + 2) * j_idx.size)

        ctx.st("tpacf_hist", b * nb + np.arange(nb), hist.astype(np.int64),
               slots=np.arange(nb) % ctx.n_threads)


class TPACFWorkload(Workload):
    """Angular correlation histogram with per-block privatization."""

    name = "tpacf"
    exact = True

    def __init__(self, scale: str = "small", seed: int = 0) -> None:
        super().__init__(scale, seed)
        self.n_points, self.threads, self.n_bins = _SCALE_SHAPES[scale]
        self._pts = _unit_sphere_points(self.rng, self.n_points)

    def setup(self, device: Device) -> TPACFKernel:
        device.alloc("tpacf_pts", (self.n_points * 3,), np.float32,
                     persistent=True, init=self._pts.reshape(-1))
        n_blocks = self.n_points // self.threads
        device.alloc("tpacf_hist", (n_blocks * self.n_bins,), np.int64,
                     persistent=True)
        return TPACFKernel(self.n_points, self.threads, self.n_bins)

    def reference(self) -> dict[str, np.ndarray]:
        edges = _bin_edges(self.n_bins)
        n_blocks = self.n_points // self.threads
        out = np.zeros(n_blocks * self.n_bins, dtype=np.int64)
        for b in range(n_blocks):
            mine = self._pts[b * self.threads:(b + 1) * self.threads]
            hist = np.zeros(self.n_bins, dtype=np.int64)
            for j0 in range(0, self.n_points, _CHUNK):
                partners = self._pts[j0:j0 + _CHUNK]
                dots = mine @ partners.T
                bins = np.digitize(dots.ravel(), edges)
                hist += np.bincount(bins, minlength=self.n_bins)
            out[b * self.n_bins:(b + 1) * self.n_bins] = hist
        return {"tpacf_hist": out}

    def merged_histogram(self, device: Device) -> np.ndarray:
        """Host-side merge of the per-block partial histograms."""
        partials = device.memory["tpacf_hist"].array
        return partials.reshape(-1, self.n_bins).sum(axis=0)
