"""Seeded input generators shared by the workloads.

Everything is deterministic in (shape, seed) so functional runs,
recovery replays and benchmarks all see identical data.
"""

from __future__ import annotations

import numpy as np


def small_ints(rng: np.random.Generator, shape, lo: int = -8, hi: int = 8) -> np.ndarray:
    """Small int32 values whose products/sums never overflow int32."""
    return rng.integers(lo, hi + 1, size=shape).astype(np.int32)


def unit_floats(rng: np.random.Generator, shape) -> np.ndarray:
    """float32 uniform in [-1, 1): well-conditioned for accumulation."""
    return (rng.random(shape, dtype=np.float32) * 2.0 - 1.0).astype(np.float32)


def positions_3d(rng: np.random.Generator, n: int, box: float) -> np.ndarray:
    """``(n, 3)`` float32 positions uniform in a cubic box."""
    return (rng.random((n, 3), dtype=np.float32) * box).astype(np.float32)


def sparse_csr(
    rng: np.random.Generator, n_rows: int, n_cols: int, nnz_per_row: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A CSR matrix with exactly ``nnz_per_row`` entries per row.

    Returns ``(row_ptr, col_idx, values)`` with int32 indices and
    float32 values — the layout the SPMV kernel consumes.
    """
    row_ptr = (np.arange(n_rows + 1) * nnz_per_row).astype(np.int32)
    col_idx = np.empty(n_rows * nnz_per_row, dtype=np.int32)
    for r in range(n_rows):
        col_idx[r * nnz_per_row:(r + 1) * nnz_per_row] = rng.choice(
            n_cols, size=nnz_per_row, replace=False
        )
    values = unit_floats(rng, n_rows * nnz_per_row)
    return row_ptr, col_idx, values


def byte_frames(
    rng: np.random.Generator, n_frames: int, height: int, width: int
) -> np.ndarray:
    """Video-like uint8 frames for SAD (sum of absolute differences)."""
    return rng.integers(0, 256, size=(n_frames, height, width)).astype(np.uint8)


def key_value_records(
    rng: np.random.Generator, n: int, key_space: int = 1 << 48
) -> tuple[np.ndarray, np.ndarray]:
    """Unique uint64 keys plus uint64 values for the MEGA-KV store."""
    keys = rng.choice(key_space, size=n, replace=False).astype(np.uint64) + np.uint64(1)
    values = rng.integers(1, 1 << 62, size=n).astype(np.uint64)
    return keys, values
