"""SPMV — sparse matrix-dense vector multiplication (Parboil).

``y = A @ x`` with ``A`` in CSR form and a uniform number of non-zeros
per row (Parboil's JDS-padded layout has the same uniform-work
property). Memory-bandwidth bound (Table I): each multiply-add streams
a value, a column index, and a gathered ``x`` element.

LP structure: one thread per row, blocks own disjoint row ranges.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LaunchError
from repro.gpu.device import Device
from repro.gpu.kernel import BlockContext, Kernel, LaunchConfig
from repro.workloads.base import Workload
from repro.workloads.generators import sparse_csr, unit_floats

#: (n_rows, n_cols, nnz_per_row, threads_per_block) per scale.
_SCALE_SHAPES = {
    "tiny": (64, 64, 4, 16),
    "small": (512, 512, 8, 64),
    "medium": (2048, 2048, 16, 128),
}


class SPMVKernel(Kernel):
    """One thread computes one output row's dot product."""

    name = "spmv"
    protected_buffers = ("spmv_y",)
    idempotent = True
    parallel_safe = True

    def __init__(self, n_rows: int, nnz_per_row: int, threads: int) -> None:
        if n_rows % threads:
            raise LaunchError("n_rows must be a multiple of block size")
        self.n_rows = n_rows
        self.nnz_per_row = nnz_per_row
        self.threads = threads

    def launch_config(self) -> LaunchConfig:
        return LaunchConfig.linear(self.n_rows // self.threads, self.threads)

    def block_output_map(self, block_id):
        base = block_id * self.threads
        return {"spmv_y": base + np.arange(self.threads)}

    def run_block(self, ctx: BlockContext) -> None:
        rows = ctx.block_id * self.threads + ctx.tid
        acc = np.zeros(ctx.n_threads, dtype=np.float32)
        base = rows * self.nnz_per_row
        for k in range(self.nnz_per_row):
            vals = ctx.ld("spmv_vals", base + k)
            cols = ctx.ld("spmv_cols", base + k)
            xk = ctx.ld("spmv_x", cols)
            acc += vals * xk
            ctx.flops(2)
        ctx.st("spmv_y", rows, acc, slots=ctx.tid)

    # -- batched execution ----------------------------------------------

    #: Blocks own disjoint row ranges and never read ``spmv_y``, so a
    #: whole group of blocks is one (blocks × threads) array program.
    batchable = True

    def run_block_batch(self, bctx) -> None:
        rows = bctx.block_ids[:, None] * self.threads + bctx.tid  # (B, T)
        acc = np.zeros(rows.shape, dtype=np.float32)
        base = rows * self.nnz_per_row
        for k in range(self.nnz_per_row):
            vals = bctx.ld("spmv_vals", base + k)
            cols = bctx.ld("spmv_cols", base + k)
            xk = bctx.ld("spmv_x", cols)
            acc += vals * xk
            bctx.flops(2)
        bctx.st("spmv_y", rows, acc, slots=bctx.tid)


class SPMVWorkload(Workload):
    """CSR sparse matrix-vector product."""

    name = "spmv"
    exact = False

    def __init__(self, scale: str = "small", seed: int = 0) -> None:
        super().__init__(scale, seed)
        (self.n_rows, self.n_cols,
         self.nnz_per_row, self.threads) = _SCALE_SHAPES[scale]
        self._row_ptr, self._cols, self._vals = sparse_csr(
            self.rng, self.n_rows, self.n_cols, self.nnz_per_row
        )
        self._x = unit_floats(self.rng, self.n_cols)

    def setup(self, device: Device) -> SPMVKernel:
        device.alloc("spmv_vals", (self._vals.size,), np.float32,
                     persistent=True, init=self._vals)
        device.alloc("spmv_cols", (self._cols.size,), np.int32,
                     persistent=True, init=self._cols)
        device.alloc("spmv_x", (self.n_cols,), np.float32,
                     persistent=True, init=self._x)
        device.alloc("spmv_y", (self.n_rows,), np.float32, persistent=True)
        return SPMVKernel(self.n_rows, self.nnz_per_row, self.threads)

    def reference(self) -> dict[str, np.ndarray]:
        vals = self._vals.reshape(self.n_rows, self.nnz_per_row)
        cols = self._cols.reshape(self.n_rows, self.nnz_per_row)
        y = np.zeros(self.n_rows, dtype=np.float32)
        for k in range(self.nnz_per_row):
            y += vals[:, k] * self._x[cols[:, k]]
        return {"spmv_y": y}
