"""The paper's benchmark workloads, implemented on the simulator.

Table I's eight benchmarks; MEGA-KV (the ninth) lives in
:mod:`repro.megakv` as a full key-value-store subsystem. Each workload
builds seeded inputs, allocates device buffers, and exposes a numpy
reference for verification.

:data:`WORKLOADS` maps the paper's benchmark names to workload classes,
in the row order of the paper's tables.
"""

from repro.workloads.base import SCALES, Workload
from repro.workloads.cutcp import CUTCPKernel, CUTCPWorkload
from repro.workloads.histo import HISTOKernel, HISTOWorkload
from repro.workloads.mri_gridding import (
    MRIGriddingKernel,
    MRIGriddingWorkload,
)
from repro.workloads.mri_q import MRIQKernel, MRIQWorkload
from repro.workloads.sad import SADKernel, SADWorkload
from repro.workloads.spmv import SPMVKernel, SPMVWorkload
from repro.workloads.tmm import TiledMatMulKernel, TMMWorkload
from repro.workloads.tpacf import TPACFKernel, TPACFWorkload

#: Benchmark name -> workload class, in the paper's table row order.
WORKLOADS: dict[str, type[Workload]] = {
    "tmm": TMMWorkload,
    "tpacf": TPACFWorkload,
    "mri-gridding": MRIGriddingWorkload,
    "spmv": SPMVWorkload,
    "sad": SADWorkload,
    "histo": HISTOWorkload,
    "cutcp": CUTCPWorkload,
    "mri-q": MRIQWorkload,
}


def make_workload(name: str, scale: str = "small", seed: int = 0) -> Workload:
    """Instantiate a workload by its paper name."""
    try:
        cls = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}"
        ) from None
    return cls(scale=scale, seed=seed)


__all__ = [
    "CUTCPKernel",
    "CUTCPWorkload",
    "HISTOKernel",
    "HISTOWorkload",
    "MRIGriddingKernel",
    "MRIGriddingWorkload",
    "MRIQKernel",
    "MRIQWorkload",
    "SADKernel",
    "SADWorkload",
    "SCALES",
    "SPMVKernel",
    "SPMVWorkload",
    "TMMWorkload",
    "TPACFKernel",
    "TPACFWorkload",
    "TiledMatMulKernel",
    "WORKLOADS",
    "Workload",
    "make_workload",
]
