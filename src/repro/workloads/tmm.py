"""Tiled matrix multiplication (TMM) — the paper's running example.

``C = A @ B`` over ``n x n`` int32 matrices (the paper's Listing 2 uses
``int``). Each thread block computes one ``tile x tile`` output tile:
the block sweeps the shared dimension in tiles, staging ``A`` and ``B``
tiles through shared memory with ``__syncthreads()`` between load and
use — the canonical CUDA matmul structure.

Each block's stores (its C tile) are disjoint from every other
block's, so blocks are associative, idempotent LP regions. The paper's
4096×4096 run (tile 32) yields the 16 384 thread blocks of Table III;
the functional scales here shrink ``n`` while preserving the structure.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LaunchError
from repro.gpu.device import Device
from repro.gpu.kernel import BlockContext, Kernel, LaunchConfig
from repro.workloads.base import Workload
from repro.workloads.generators import small_ints

#: (n, tile) per scale; paper scale is (4096, 32).
_SCALE_SHAPES = {
    "tiny": (16, 4),
    "small": (64, 8),
    "medium": (128, 16),
}


class TiledMatMulKernel(Kernel):
    """One thread block computes one output tile of C."""

    name = "tmm"
    protected_buffers = ("tmm_C",)
    idempotent = True
    parallel_safe = True
    batchable = True

    def __init__(self, n: int, tile: int) -> None:
        if n % tile:
            raise LaunchError("matrix size must be a tile multiple")
        self.n = n
        self.tile = tile

    def launch_config(self) -> LaunchConfig:
        blocks = self.n // self.tile
        return LaunchConfig(grid=(blocks, blocks),
                            block=(self.tile, self.tile))

    def block_output_map(self, block_id):
        n, tile = self.n, self.tile
        bx, by = self.launch_config().block_coords(block_id)
        rows = (by * tile + np.arange(tile)) * n
        cols = bx * tile + np.arange(tile)
        return {"tmm_C": np.add.outer(rows, cols).ravel()}

    def run_block(self, ctx: BlockContext) -> None:
        n, tile = self.n, self.tile
        bx, by = ctx.block_xy
        tx, ty = ctx.thread_xy()
        row = by * tile + ty
        col = bx * tile + tx

        acc = np.zeros(ctx.n_threads, dtype=np.int64)
        shared_a = ctx.shared.alloc("A", (tile, tile), np.int32)
        shared_b = ctx.shared.alloc("B", (tile, tile), np.int32)

        for kt in range(n // tile):
            # Stage one tile of A and one of B into shared memory.
            a_idx = row * n + (kt * tile + tx)
            b_idx = (kt * tile + ty) * n + col
            shared_a[ty, tx] = ctx.ld("tmm_A", a_idx)
            shared_b[ty, tx] = ctx.ld("tmm_B", b_idx)
            ctx.charge_shared(ctx.n_threads * 2 * 4)  # the two tile writes
            ctx.syncthreads()

            # Each thread accumulates a dot product over the tile; the
            # whole block's work is one tile-by-tile matmul.
            partial = shared_a.astype(np.int64) @ shared_b.astype(np.int64)
            acc += partial[ty, tx]
            ctx.flops(2 * tile)
            # Each thread reads 2*tile shared values of 4 bytes.
            ctx.charge_shared(ctx.n_threads * 2 * tile * 4)
            ctx.syncthreads()

        ctx.st("tmm_C", row * n + col, acc.astype(np.int32), slots=ctx.tid)

    def run_block_batch(self, bctx) -> None:
        n, tile = self.n, self.tile
        grid_x = n // tile
        bx = bctx.block_ids % grid_x
        by = bctx.block_ids // grid_x
        tid = bctx.tid
        tx = tid % tile
        ty = tid // tile
        row = (by * tile)[:, None] + ty
        col = (bx * tile)[:, None] + tx
        n_batch = bctx.n_blocks_in_batch

        acc = np.zeros((n_batch, bctx.n_threads), dtype=np.int64)
        for kt in range(n // tile):
            a_idx = row * n + (kt * tile + tx)
            b_idx = (kt * tile + ty)[None, :] * n + col
            # Row-major reshape recovers each block's shared_[ty, tx]
            # staging layout (tid = ty * tile + tx).
            tile_a = bctx.ld("tmm_A", a_idx).reshape(n_batch, tile, tile)
            tile_b = bctx.ld("tmm_B", b_idx).reshape(n_batch, tile, tile)
            bctx.charge_shared(bctx.n_threads * 2 * 4)
            bctx.syncthreads()

            partial = np.matmul(tile_a.astype(np.int64),
                                tile_b.astype(np.int64))
            acc += partial.reshape(n_batch, -1)
            bctx.flops(2 * tile)
            bctx.charge_shared(bctx.n_threads * 2 * tile * 4)
            bctx.syncthreads()

        bctx.st("tmm_C", row * n + col, acc.astype(np.int32),
                slots=bctx.tid)


class TMMWorkload(Workload):
    """Tiled matrix multiplication workload (int32, exact)."""

    name = "tmm"
    exact = True

    def __init__(self, scale: str = "small", seed: int = 0) -> None:
        super().__init__(scale, seed)
        self.n, self.tile = _SCALE_SHAPES[scale]
        self._a = small_ints(self.rng, (self.n, self.n))
        self._b = small_ints(self.rng, (self.n, self.n))

    def setup(self, device: Device) -> TiledMatMulKernel:
        device.alloc("tmm_A", (self.n, self.n), np.int32, persistent=True,
                     init=self._a)
        device.alloc("tmm_B", (self.n, self.n), np.int32, persistent=True,
                     init=self._b)
        device.alloc("tmm_C", (self.n, self.n), np.int32, persistent=True)
        return TiledMatMulKernel(self.n, self.tile)

    def reference(self) -> dict[str, np.ndarray]:
        c = self._a.astype(np.int64) @ self._b.astype(np.int64)
        return {"tmm_C": c.astype(np.int32)}
