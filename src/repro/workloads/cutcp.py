"""CUTCP — distance-cutoff Coulombic potential (Parboil).

Computes the electrostatic potential on a regular 2-D lattice from a
set of point charges, zeroing contributions beyond a cutoff radius.
Instruction-throughput bound (Table I): heavy per-point arithmetic
(distance, reciprocal square root) against modest memory traffic.

LP structure: each block owns a disjoint tile of lattice points; every
block reads all atoms (a small, persistent input).
"""

from __future__ import annotations

import numpy as np

from repro.errors import LaunchError
from repro.gpu.device import Device
from repro.gpu.kernel import BlockContext, Kernel, LaunchConfig
from repro.workloads.base import Workload

#: (grid_edge, tile_edge, n_atoms, cutoff) per scale.
_SCALE_SHAPES = {
    "tiny": (16, 4, 16, 6.0),
    "small": (32, 8, 64, 10.0),
    "medium": (64, 8, 256, 14.0),
}

#: Atoms are processed in chunks of this size per step.
_CHUNK = 32


class CUTCPKernel(Kernel):
    """One block computes the potential over one lattice tile."""

    name = "cutcp"
    protected_buffers = ("cutcp_pot",)
    idempotent = True
    parallel_safe = True

    def __init__(self, grid: int, tile: int, n_atoms: int, cutoff: float) -> None:
        if grid % tile:
            raise LaunchError("grid edge must be a tile multiple")
        self.grid = grid
        self.tile = tile
        self.n_atoms = n_atoms
        self.cutoff = np.float32(cutoff)

    def launch_config(self) -> LaunchConfig:
        blocks = self.grid // self.tile
        return LaunchConfig(grid=(blocks, blocks),
                            block=(self.tile, self.tile))

    def block_output_map(self, block_id):
        grid, tile = self.grid, self.tile
        bx, by = self.launch_config().block_coords(block_id)
        rows = (by * tile + np.arange(tile)) * grid
        cols = bx * tile + np.arange(tile)
        return {"cutcp_pot": np.add.outer(rows, cols).ravel()}

    def run_block(self, ctx: BlockContext) -> None:
        tile, grid = self.tile, self.grid
        bx, by = ctx.block_xy
        tx, ty = ctx.thread_xy()
        # Each thread owns one lattice point of the tile.
        px = (bx * tile + tx).astype(np.float32)
        py = (by * tile + ty).astype(np.float32)

        acc = np.zeros(ctx.n_threads, dtype=np.float32)
        cutoff2 = self.cutoff * self.cutoff
        for a0 in range(0, self.n_atoms, _CHUNK):
            a_idx = np.arange(a0, min(a0 + _CHUNK, self.n_atoms))
            ax = ctx.ld("cutcp_atoms", a_idx * 3 + 0)
            ay = ctx.ld("cutcp_atoms", a_idx * 3 + 1)
            aq = ctx.ld("cutcp_atoms", a_idx * 3 + 2)
            dx = px[:, None] - ax[None, :]
            dy = py[:, None] - ay[None, :]
            r2 = dx * dx + dy * dy
            inside = (r2 < cutoff2) & (r2 > np.float32(1e-12))
            contrib = np.where(
                inside,
                aq[None, :] / np.sqrt(r2, where=r2 > 0,
                                      out=np.ones_like(r2)),
                np.float32(0.0),
            ).astype(np.float32)
            acc += contrib.sum(axis=1, dtype=np.float32)
            ctx.flops(8 * a_idx.size)  # dist + rsqrt + masked MAC

        out_idx = (by * tile + ty) * grid + (bx * tile + tx)
        ctx.st("cutcp_pot", out_idx, acc, slots=ctx.tid)


class CUTCPWorkload(Workload):
    """Cutoff Coulombic potential over a 2-D lattice."""

    name = "cutcp"
    exact = False

    def __init__(self, scale: str = "small", seed: int = 0) -> None:
        super().__init__(scale, seed)
        self.grid, self.tile, self.n_atoms, cutoff = _SCALE_SHAPES[scale]
        self.cutoff = np.float32(cutoff)
        # Atom layout: [x, y, charge] triplets in grid coordinates.
        atoms = np.empty((self.n_atoms, 3), dtype=np.float32)
        atoms[:, 0] = self.rng.random(self.n_atoms, dtype=np.float32) * self.grid
        atoms[:, 1] = self.rng.random(self.n_atoms, dtype=np.float32) * self.grid
        atoms[:, 2] = (self.rng.random(self.n_atoms, dtype=np.float32)
                       * 2.0 - 1.0)
        self._atoms = atoms

    def setup(self, device: Device) -> CUTCPKernel:
        device.alloc("cutcp_atoms", (self.n_atoms * 3,), np.float32,
                     persistent=True, init=self._atoms.reshape(-1))
        device.alloc("cutcp_pot", (self.grid * self.grid,), np.float32,
                     persistent=True)
        return CUTCPKernel(self.grid, self.tile, self.n_atoms,
                           float(self.cutoff))

    def reference(self) -> dict[str, np.ndarray]:
        gx, gy = np.meshgrid(np.arange(self.grid, dtype=np.float32),
                             np.arange(self.grid, dtype=np.float32))
        px, py = gx.ravel(), gy.ravel()  # row-major: idx = y*grid + x
        pot = np.zeros(self.grid * self.grid, dtype=np.float64)
        cutoff2 = float(self.cutoff) ** 2
        for x, y, q in self._atoms:
            dx = px - x
            dy = py - y
            r2 = dx * dx + dy * dy
            mask = (r2 < cutoff2) & (r2 > 1e-12)
            pot[mask] += q / np.sqrt(r2[mask])
        return {"cutcp_pot": pot.astype(np.float32)}
