"""MRI-GRIDDING — gridding scattered k-space samples (Parboil).

Resamples non-uniform k-space measurements onto a Cartesian grid,
weighting each sample by a (Gaussian-window) gridding kernel of its
distance to the cell. Parboil's implementation scatters; ours *gathers*
per output cell, which preserves the computation while giving every
thread block a disjoint output tile — the associativity LP regions
need. At paper scale this kernel launches 65 536 thread blocks, second
only to SAD (Table III), which is why it is the other benchmark the
hash-table checksums crumble on.

LP structure: each block owns one tile of grid cells; all samples are
shared read-only input.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LaunchError
from repro.gpu.device import Device
from repro.gpu.kernel import BlockContext, Kernel, LaunchConfig
from repro.workloads.base import Workload

#: (grid_edge, tile_edge, n_samples, kernel_width) per scale.
_SCALE_SHAPES = {
    "tiny": (16, 4, 64, 1.5),
    "small": (32, 4, 256, 1.5),
    "medium": (64, 8, 1024, 2.0),
}

#: Samples are consumed in chunks of this size.
_CHUNK = 64


class MRIGriddingKernel(Kernel):
    """One block grids all samples onto its tile of cells (gather)."""

    name = "mri-gridding"
    protected_buffers = ("mrig_grid",)
    idempotent = True
    parallel_safe = True

    def __init__(self, grid: int, tile: int, n_samples: int,
                 width: float) -> None:
        if grid % tile:
            raise LaunchError("grid edge must be a tile multiple")
        self.grid = grid
        self.tile = tile
        self.n_samples = n_samples
        self.width = np.float32(width)

    def launch_config(self) -> LaunchConfig:
        blocks = self.grid // self.tile
        return LaunchConfig(grid=(blocks, blocks),
                            block=(self.tile, self.tile))

    def block_output_map(self, block_id):
        grid, tile = self.grid, self.tile
        bx, by = self.launch_config().block_coords(block_id)
        rows = (by * tile + np.arange(tile)) * grid
        cols = bx * tile + np.arange(tile)
        return {"mrig_grid": np.add.outer(rows, cols).ravel()}

    def run_block(self, ctx: BlockContext) -> None:
        tile, grid = self.tile, self.grid
        bx, by = ctx.block_xy
        tx, ty = ctx.thread_xy()
        cx = (bx * tile + tx).astype(np.float32)
        cy = (by * tile + ty).astype(np.float32)

        acc = np.zeros(ctx.n_threads, dtype=np.float32)
        inv_w2 = np.float32(1.0) / (self.width * self.width)
        support2 = np.float32((2.0 * float(self.width)) ** 2)
        for s0 in range(0, self.n_samples, _CHUNK):
            s_idx = np.arange(s0, min(s0 + _CHUNK, self.n_samples))
            sx = ctx.ld("mrig_samples", s_idx * 3 + 0)
            sy = ctx.ld("mrig_samples", s_idx * 3 + 1)
            sv = ctx.ld("mrig_samples", s_idx * 3 + 2)
            dx = cx[:, None] - sx[None, :]
            dy = cy[:, None] - sy[None, :]
            r2 = dx * dx + dy * dy
            w = np.where(r2 < support2,
                         np.exp(-r2 * inv_w2), np.float32(0.0))
            acc += (w * sv[None, :]).sum(axis=1, dtype=np.float32)
            ctx.flops(9 * s_idx.size)  # dist + exp window + MAC

        out_idx = (by * tile + ty) * grid + (bx * tile + tx)
        ctx.st("mrig_grid", out_idx, acc, slots=ctx.tid)


class MRIGriddingWorkload(Workload):
    """Gridding of scattered samples onto a Cartesian lattice."""

    name = "mri-gridding"
    exact = False

    def __init__(self, scale: str = "small", seed: int = 0) -> None:
        super().__init__(scale, seed)
        self.grid, self.tile, self.n_samples, width = _SCALE_SHAPES[scale]
        self.width = np.float32(width)
        samples = np.empty((self.n_samples, 3), dtype=np.float32)
        samples[:, 0] = self.rng.random(self.n_samples,
                                        dtype=np.float32) * self.grid
        samples[:, 1] = self.rng.random(self.n_samples,
                                        dtype=np.float32) * self.grid
        samples[:, 2] = (self.rng.random(self.n_samples, dtype=np.float32)
                         * 2.0 - 1.0)
        self._samples = samples

    def setup(self, device: Device) -> MRIGriddingKernel:
        device.alloc("mrig_samples", (self.n_samples * 3,), np.float32,
                     persistent=True, init=self._samples.reshape(-1))
        device.alloc("mrig_grid", (self.grid * self.grid,), np.float32,
                     persistent=True)
        return MRIGriddingKernel(self.grid, self.tile, self.n_samples,
                                 float(self.width))

    def reference(self) -> dict[str, np.ndarray]:
        gx, gy = np.meshgrid(np.arange(self.grid, dtype=np.float64),
                             np.arange(self.grid, dtype=np.float64))
        cx, cy = gx.ravel(), gy.ravel()
        out = np.zeros(self.grid * self.grid, dtype=np.float64)
        inv_w2 = 1.0 / float(self.width) ** 2
        support2 = (2.0 * float(self.width)) ** 2
        for x, y, v in self._samples.astype(np.float64):
            r2 = (cx - x) ** 2 + (cy - y) ** 2
            mask = r2 < support2
            out[mask] += np.exp(-r2[mask] * inv_w2) * v
        return {"mrig_grid": out.astype(np.float32)}
