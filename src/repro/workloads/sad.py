"""SAD — sum of absolute differences (Parboil).

The motion-estimation inner loop of H.264 encoding: for every
macroblock of the current frame, compute the SAD against the reference
frame at each candidate displacement. Bandwidth bound (Table I), and —
decisively for the paper — launched with an enormous number of small
thread blocks (128 640 at paper scale, Table III), which is what blows
up lock-based and collision-prone checksum tables.

LP structure: one block per macroblock, one thread per displacement
candidate; each block's SAD outputs are a disjoint slice.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LaunchError
from repro.gpu.device import Device
from repro.gpu.kernel import BlockContext, Kernel, LaunchConfig
from repro.workloads.base import Workload
from repro.workloads.generators import byte_frames

#: Macroblock edge in pixels.
MB = 8
#: (height, width, search_radius) per scale; displacement candidates
#: form a (2r+1)^2 grid.
_SCALE_SHAPES = {
    "tiny": (32, 32, 1),
    "small": (64, 64, 1),
    "medium": (128, 128, 2),
}


class SADKernel(Kernel):
    """One block = one macroblock; one thread = one displacement."""

    name = "sad"
    protected_buffers = ("sad_out",)
    idempotent = True
    parallel_safe = True

    def __init__(self, height: int, width: int, radius: int) -> None:
        if height % MB or width % MB:
            raise LaunchError("frame dims must be macroblock multiples")
        self.height = height
        self.width = width
        self.radius = radius
        side = 2 * radius + 1
        self.n_disp = side * side
        self.mb_rows = height // MB
        self.mb_cols = width // MB

    def launch_config(self) -> LaunchConfig:
        return LaunchConfig.linear(self.mb_rows * self.mb_cols, self.n_disp)

    def block_output_map(self, block_id):
        base = block_id * self.n_disp
        return {"sad_out": base + np.arange(self.n_disp)}

    def _displacements(self) -> np.ndarray:
        r = self.radius
        side = 2 * r + 1
        d = np.arange(self.n_disp)
        return np.stack([d // side - r, d % side - r], axis=1)

    def run_block(self, ctx: BlockContext) -> None:
        mb = ctx.block_id
        mb_r, mb_c = mb // self.mb_cols, mb % self.mb_cols
        y0, x0 = mb_r * MB, mb_c * MB

        rows = np.arange(y0, y0 + MB)
        cols = np.arange(x0, x0 + MB)
        flat = (rows[:, None] * self.width + cols[None, :]).ravel()
        cur = ctx.ld("sad_cur", flat).astype(np.int32)

        sads = np.zeros(self.n_disp, dtype=np.int64)
        for t, (dy, dx) in enumerate(self._displacements()):
            # Clamp the shifted window to the frame (edge replication).
            ry = np.clip(rows + dy, 0, self.height - 1)
            rx = np.clip(cols + dx, 0, self.width - 1)
            rflat = (ry[:, None] * self.width + rx[None, :]).ravel()
            ref = ctx.ld("sad_ref", rflat).astype(np.int32)
            sads[t] = np.abs(cur - ref).sum()
        ctx.flops(2 * MB * MB)  # per-thread |a-b| + accumulate

        out_idx = mb * self.n_disp + np.arange(self.n_disp)
        ctx.st("sad_out", out_idx, sads.astype(np.uint32),
               slots=np.arange(self.n_disp))


class SADWorkload(Workload):
    """Macroblock SAD sweep over displacement candidates."""

    name = "sad"
    exact = True

    def __init__(self, scale: str = "small", seed: int = 0) -> None:
        super().__init__(scale, seed)
        self.height, self.width, self.radius = _SCALE_SHAPES[scale]
        frames = byte_frames(self.rng, 2, self.height, self.width)
        self._cur, self._ref = frames[0], frames[1]

    def setup(self, device: Device) -> SADKernel:
        device.alloc("sad_cur", (self.height * self.width,), np.uint8,
                     persistent=True, init=self._cur.reshape(-1))
        device.alloc("sad_ref", (self.height * self.width,), np.uint8,
                     persistent=True, init=self._ref.reshape(-1))
        kernel = SADKernel(self.height, self.width, self.radius)
        n_out = kernel.mb_rows * kernel.mb_cols * kernel.n_disp
        device.alloc("sad_out", (n_out,), np.uint32, persistent=True)
        return kernel

    def reference(self) -> dict[str, np.ndarray]:
        kernel = SADKernel(self.height, self.width, self.radius)
        cur = self._cur.astype(np.int32)
        ref = self._ref.astype(np.int32)
        out = np.zeros(
            kernel.mb_rows * kernel.mb_cols * kernel.n_disp, dtype=np.uint32
        )
        disps = kernel._displacements()
        for mb in range(kernel.mb_rows * kernel.mb_cols):
            mb_r, mb_c = mb // kernel.mb_cols, mb % kernel.mb_cols
            rows = np.arange(mb_r * MB, mb_r * MB + MB)
            cols = np.arange(mb_c * MB, mb_c * MB + MB)
            cur_blk = cur[np.ix_(rows, cols)]
            for t, (dy, dx) in enumerate(disps):
                ry = np.clip(rows + dy, 0, self.height - 1)
                rx = np.clip(cols + dx, 0, self.width - 1)
                ref_blk = ref[np.ix_(ry, rx)]
                out[mb * kernel.n_disp + t] = np.abs(cur_blk - ref_blk).sum()
        return {"sad_out": out}
