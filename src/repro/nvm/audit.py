"""Crash-consistency auditing: systematic crash-schedule sweeps.

The test suite checks recovery at hand-picked crash points; downstream
users integrating Lazy Persistency into their own kernels need the same
assurance for *their* code. :func:`audit_crash_consistency` packages
the methodology as a public API: run a scenario under many generated
crash schedules (crash point × persistence lottery × block order),
recover each, and verify a user-supplied correctness predicate.

Example
-------

>>> import numpy as np
>>> import repro
>>> from repro.nvm.audit import audit_crash_consistency
>>> def scenario():
...     device = repro.Device(cache_capacity_lines=16)
...     work = repro.workloads.TMMWorkload(scale="tiny")
...     kernel = work.setup(device)
...     lp_kernel = repro.LPRuntime(device).instrument(kernel)
...     return device, lp_kernel, work.verify
>>> report = audit_crash_consistency(scenario, n_schedules=10)
>>> report.all_passed
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nvm.crash import CrashPlan

if False:  # import-time cycle guard: names used only in annotations
    from repro.core.runtime import LazyPersistentKernel  # noqa: F401
    from repro.gpu.device import Device  # noqa: F401

#: A scenario builder: returns a fresh (device, LP kernel, verifier).
#: The verifier is called with the device and must raise on corruption.
ScenarioFactory = Callable[
    [], "tuple[Device, LazyPersistentKernel, Callable[[Device], None]]"
]


@dataclass(frozen=True)
class CrashSchedule:
    """One generated failure scenario."""

    after_blocks: int
    persist_fraction: float
    seed: int

    def plan(self) -> CrashPlan:
        """The schedule as a device crash plan."""
        return CrashPlan(after_blocks=self.after_blocks,
                         persist_fraction=self.persist_fraction,
                         seed=self.seed)


@dataclass
class AuditFailure:
    """A schedule whose recovery did not restore correctness."""

    schedule: CrashSchedule
    stage: str  # "recovery" or "verification"
    error: str


@dataclass
class AuditReport:
    """Outcome of a crash-consistency sweep."""

    n_schedules: int
    failures: list[AuditFailure] = field(default_factory=list)
    total_regions_recovered: int = 0
    total_lines_lost: int = 0

    @property
    def all_passed(self) -> bool:
        """True when every schedule recovered to a correct state."""
        return not self.failures

    def summary(self) -> str:
        """One-line human-readable result."""
        if self.all_passed:
            return (
                f"{self.n_schedules} crash schedules: all recovered "
                f"({self.total_regions_recovered} regions re-executed, "
                f"{self.total_lines_lost} NVM lines lost overall)"
            )
        return (
            f"{len(self.failures)}/{self.n_schedules} crash schedules "
            f"FAILED; first: {self.failures[0].error}"
        )


def generate_schedules(
    n_blocks: int, n_schedules: int, seed: int = 0
) -> list[CrashSchedule]:
    """Deterministic schedule set covering the crash space.

    Always includes the boundary cases (crash before anything, crash at
    completion with nothing persisted, crash at completion with
    everything persisted); the rest samples uniformly.
    """
    rng = np.random.default_rng(seed)
    schedules = [
        CrashSchedule(0, 0.0, seed),
        CrashSchedule(n_blocks, 0.0, seed + 1),
        CrashSchedule(n_blocks, 1.0, seed + 2),
    ]
    while len(schedules) < n_schedules:
        schedules.append(
            CrashSchedule(
                after_blocks=int(rng.integers(0, n_blocks + 1)),
                persist_fraction=float(rng.random()),
                seed=int(rng.integers(0, 2**31)),
            )
        )
    return schedules[:max(n_schedules, 3)]


def audit_crash_consistency(
    make_scenario: ScenarioFactory,
    n_schedules: int = 25,
    seed: int = 0,
    recover=None,
) -> AuditReport:
    """Sweep crash schedules over a scenario; verify every recovery.

    ``recover`` customizes the recovery procedure (default: LP's
    :class:`~repro.core.recovery.RecoveryManager`); pass e.g. an EP
    recovery adapter to audit other schemes. It receives ``(device,
    kernel)`` and must return an object with a ``recovered_blocks``
    list (or ``None``).
    """
    if recover is None:
        # Imported here: repro.nvm must stay importable below repro.core.
        from repro.core.recovery import RecoveryManager

        def recover(device, kernel):
            return RecoveryManager(device, kernel).recover()

    # Probe the grid size once.
    device, kernel, _ = make_scenario()
    n_blocks = kernel.launch_config().n_blocks

    schedules = generate_schedules(n_blocks, n_schedules, seed)
    report = AuditReport(n_schedules=len(schedules))

    for schedule in schedules:
        device, kernel, verify = make_scenario()
        result = device.launch(kernel, crash_plan=schedule.plan())
        if result.crash_report is not None:
            report.total_lines_lost += result.crash_report.n_lost
        try:
            rec = recover(device, kernel)
        except Exception as exc:  # noqa: BLE001 - audit must not stop
            report.failures.append(
                AuditFailure(schedule, "recovery", repr(exc))
            )
            continue
        recovered = getattr(rec, "recovered_blocks", None)
        if recovered is not None:
            report.total_regions_recovered += len(recovered)
        try:
            verify(device)
        except AssertionError as exc:
            report.failures.append(
                AuditFailure(schedule, "verification", str(exc))
            )
    return report
