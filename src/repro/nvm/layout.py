"""On-disk layout of the v1 ``MappedShadow`` heap file.

One module owns the byte-level format — the struct layouts, region
offsets, and the encode/decode of header, torn-write journal and
buffer directory — so the two components that speak it cannot drift:

* :mod:`repro.nvm.mapped` (the writer: the live mmap-backed heap), and
* :mod:`repro.nvm.inspect` (the reader: the offline, read-only
  inspector behind ``repro inspect``).

Layout (version 1, little-endian)::

    offset 0      header   magic "LPNVHEAP", version, line size,
                           directory capacity, data offset,
                           directory length, directory CRC32
    offset 64     journal  write-back intent record (torn-write window)
    offset 4224   directory  JSON array of buffer descriptors
    data offset   data     buffer images at ``data offset + base_addr``

Decoders validate as they parse and raise the same typed errors
:meth:`MappedShadow.open` documents — never silent garbage. Nothing
here touches a file: callers hand in bytes and get structures back,
which is what keeps the inspector strictly read-only.

The module also owns the **shard manifest** format that
:class:`repro.nvm.sharded.ShardedShadow` writes next to its N shard
files: a fixed header (magic ``"LPNVMANI"``, version, shard count,
body length, body CRC32) followed by a CRC-guarded JSON body holding
the line size, the address-block granularity and the deterministic
block→shard table. Each shard file is an ordinary v1 heap; the
manifest is the only thing that knows how the device address space
was partitioned.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import (
    HeapCorruptError,
    HeapFormatError,
    HeapTruncatedError,
    HeapVersionError,
)

MAGIC = b"LPNVHEAP"
VERSION = 1

#: ``magic, version, line_size, dir_capacity, data_offset, dir_len, dir_crc``
HEADER = struct.Struct("<8sIIQQQI")
#: ``mode, count`` followed by ``count`` uint64 line ids (exact mode)
#: or two uint64s (range mode).
JOURNAL_HEAD = struct.Struct("<II")

HEADER_OFFSET = 0
JOURNAL_OFFSET = 64
DIR_OFFSET = 4224
#: Line ids the journal can record exactly; larger write-backs fall
#: back to a [first, last] range record.
JOURNAL_CAPACITY = 500

JOURNAL_EMPTY = 0
JOURNAL_EXACT = 1
JOURNAL_RANGE = 2

#: Default directory region: ~1.3k buffer descriptors.
DEFAULT_DIR_CAPACITY = 128 * 1024
#: Default initial data region (sparse; grows on demand).
DEFAULT_DATA_CAPACITY = 16 * 1024 * 1024

JOURNAL_MODE_NAMES = {
    JOURNAL_EMPTY: "EMPTY",
    JOURNAL_EXACT: "EXACT",
    JOURNAL_RANGE: "RANGE",
}


@dataclass(frozen=True)
class HeapHeader:
    """The decoded fixed header of a heap file."""

    version: int
    line_size: int
    dir_capacity: int
    data_offset: int
    dir_len: int
    dir_crc: int


@dataclass(frozen=True)
class JournalRecord:
    """The decoded torn-write journal, armed or not.

    ``lines`` is the exact armed set in EXACT mode and the full
    [first, last] expansion in RANGE mode (conservative, matching
    what the writer's reopen path reports as torn).
    """

    mode: int
    count: int
    lines: tuple[int, ...]

    @property
    def armed(self) -> bool:
        return self.mode != JOURNAL_EMPTY

    @property
    def exact(self) -> bool:
        return self.mode != JOURNAL_RANGE

    @property
    def mode_name(self) -> str:
        return JOURNAL_MODE_NAMES[self.mode]


@dataclass(frozen=True)
class HeapEntry:
    """One persistent buffer's descriptor in the heap directory."""

    name: str
    dtype: np.dtype
    shape: tuple[int, ...]
    base_addr: int
    nbytes: int
    padded_bytes: int
    #: ``"table"`` for checksum-table buffers (``__lp_`` namespace),
    #: ``"data"`` for application buffers — the split the directory
    #: keeps so a cold open can tell the checksum-table region apart.
    role: str

    @property
    def size(self) -> int:
        """Element count."""
        return int(np.prod(self.shape)) if self.shape else 1

    def line_span(self, line_size: int) -> tuple[int, int]:
        """Half-open ``[first, last)`` line-id range of this buffer."""
        first = self.base_addr // line_size
        return first, first + self.padded_bytes // line_size

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "dtype": self.dtype.str,
            "shape": list(self.shape),
            "base_addr": self.base_addr,
            "nbytes": self.nbytes,
            "padded_bytes": self.padded_bytes,
            "role": self.role,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "HeapEntry":
        try:
            return cls(
                name=str(raw["name"]),
                dtype=np.dtype(raw["dtype"]),
                shape=tuple(int(s) for s in raw["shape"]),
                base_addr=int(raw["base_addr"]),
                nbytes=int(raw["nbytes"]),
                padded_bytes=int(raw["padded_bytes"]),
                role=str(raw.get("role", "data")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise HeapFormatError(
                f"undecodable heap directory entry: {raw!r} ({exc})"
            ) from None


def table_role(name: str) -> str:
    """Directory role of a buffer: checksum-table vs application data."""
    return "table" if name.startswith("__lp_") else "data"


# ----------------------------------------------------------------------
# Header
# ----------------------------------------------------------------------

def parse_header(raw: bytes, path) -> HeapHeader:
    """Decode and validate the fixed header; raises typed errors."""
    if len(raw) < HEADER.size:
        raise HeapTruncatedError(
            f"{path}: {len(raw)} header bytes — the fixed header is "
            f"{HEADER.size} bytes"
        )
    magic, version, line_size, dir_capacity, data_offset, dir_len, \
        dir_crc = HEADER.unpack(raw[:HEADER.size])
    if magic != MAGIC:
        raise HeapFormatError(
            f"{path} is not an LP heap file (magic {magic!r})"
        )
    if version != VERSION:
        raise HeapVersionError(
            f"{path} is heap format v{version}; this build reads "
            f"v{VERSION}"
        )
    if line_size <= 0 or line_size & (line_size - 1):
        raise HeapFormatError(
            f"{path}: nonsensical line size {line_size}"
        )
    if (data_offset < DIR_OFFSET + dir_len
            or dir_len > dir_capacity
            or data_offset % line_size):
        raise HeapFormatError(
            f"{path}: nonsensical geometry (dir_len={dir_len}, "
            f"dir_capacity={dir_capacity}, data_offset={data_offset})"
        )
    return HeapHeader(version=version, line_size=line_size,
                      dir_capacity=dir_capacity, data_offset=data_offset,
                      dir_len=dir_len, dir_crc=dir_crc)


def pack_header(line_size: int, dir_capacity: int, data_offset: int,
                dir_payload: bytes) -> bytes:
    return HEADER.pack(MAGIC, VERSION, line_size, dir_capacity,
                       data_offset, len(dir_payload),
                       zlib.crc32(dir_payload))


# ----------------------------------------------------------------------
# Directory
# ----------------------------------------------------------------------

def parse_directory(dir_bytes: bytes, dir_crc: int,
                    path) -> dict[str, HeapEntry]:
    """CRC-check and decode the directory region into entries."""
    if zlib.crc32(dir_bytes) != dir_crc:
        raise HeapCorruptError(
            f"{path}: directory checksum mismatch — the heap "
            "directory is corrupt"
        )
    try:
        raw_entries = json.loads(dir_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise HeapCorruptError(
            f"{path}: directory is valid per checksum but not "
            f"decodable JSON ({exc}) — refusing to guess"
        ) from None
    entries: dict[str, HeapEntry] = {}
    for raw_entry in raw_entries:
        entry = HeapEntry.from_dict(raw_entry)
        entries[entry.name] = entry
    return entries


def pack_directory(entries) -> bytes:
    """Serialize allocation-ordered entries to the directory payload."""
    return json.dumps(
        [entry.to_dict() for entry in entries],
        separators=(",", ":"),
    ).encode("utf-8")


# ----------------------------------------------------------------------
# Torn-write journal
# ----------------------------------------------------------------------

def parse_journal(raw: bytes, path) -> JournalRecord:
    """Decode the journal region (head + body) without mutating it."""
    mode, count = JOURNAL_HEAD.unpack(raw[:JOURNAL_HEAD.size])
    body = raw[JOURNAL_HEAD.size:]
    if mode == JOURNAL_EMPTY:
        return JournalRecord(mode=mode, count=0, lines=())
    if mode == JOURNAL_EXACT and count <= JOURNAL_CAPACITY:
        lines = struct.unpack(f"<{count}Q", body[:8 * count])
        return JournalRecord(mode=mode, count=count, lines=lines)
    if mode == JOURNAL_RANGE:
        lo, hi = struct.unpack("<2Q", body[:16])
        if hi < lo:
            raise HeapCorruptError(
                f"{path}: torn-write journal range [{lo}, {hi}] "
                "is inverted"
            )
        return JournalRecord(mode=mode, count=count,
                             lines=tuple(range(lo, hi + 1)))
    raise HeapCorruptError(
        f"{path}: torn-write journal mode {mode} with count "
        f"{count} is not a state this format writes"
    )


def pack_journal(line_ids) -> bytes:
    """Encode an armed intent record for ``line_ids``."""
    n = len(line_ids)
    if n <= JOURNAL_CAPACITY:
        return JOURNAL_HEAD.pack(JOURNAL_EXACT, n) + struct.pack(
            f"<{n}Q", *(int(lid) for lid in line_ids)
        )
    lo = int(min(line_ids))
    hi = int(max(line_ids))
    return JOURNAL_HEAD.pack(JOURNAL_RANGE, n) + struct.pack("<2Q", lo, hi)


def pack_journal_empty() -> bytes:
    return JOURNAL_HEAD.pack(JOURNAL_EMPTY, 0)


def journal_region_size() -> int:
    """Bytes the largest journal record can occupy."""
    return JOURNAL_HEAD.size + 8 * JOURNAL_CAPACITY


# ----------------------------------------------------------------------
# Shard manifest (sharded multi-heap scale-out)
# ----------------------------------------------------------------------

MANIFEST_MAGIC = b"LPNVMANI"
MANIFEST_VERSION = 1

#: ``magic, version, n_shards, body_len, body_crc``
MANIFEST_HEADER = struct.Struct("<8sIIQI")
MANIFEST_BODY_OFFSET = 64

#: Address-block granularity of the block→shard table: consecutive
#: cache lines grouped into one mapping unit. Buffers always live
#: wholly inside one shard, and two buffers cohabiting one address
#: block are pinned to the same shard — so the default granularity is
#: a single cache line (buffers never share a line; placement stays
#: free to balance). The table is stored run-length encoded, so fine
#: granularity costs one extent per buffer, not one entry per line.
DEFAULT_SHARD_BLOCK_LINES = 1


@dataclass(frozen=True)
class ShardManifest:
    """The decoded shard manifest of a sharded heap.

    ``shard_names`` are the shard heap file names relative to the
    manifest's own directory; ``block_map`` maps address-block id
    (``line_id // block_lines``) to the owning shard index.
    """

    n_shards: int
    line_size: int
    block_lines: int
    shard_names: tuple[str, ...]
    block_map: dict[int, int]

    def shard_of_line(self, line_id: int) -> int:
        """Owning shard of a cache line; raises on unmapped lines."""
        block = int(line_id) // self.block_lines
        try:
            return self.block_map[block]
        except KeyError:
            raise HeapCorruptError(
                f"line {line_id} (address block {block}) is not mapped "
                "to any shard in the manifest"
            ) from None


def is_manifest(raw: bytes) -> bool:
    """True when ``raw`` starts with the shard-manifest magic."""
    return raw[:len(MANIFEST_MAGIC)] == MANIFEST_MAGIC


def parse_manifest(raw: bytes, path) -> ShardManifest:
    """Decode and validate a shard manifest; raises typed errors."""
    if len(raw) < MANIFEST_HEADER.size:
        raise HeapTruncatedError(
            f"{path}: {len(raw)} manifest bytes — the fixed manifest "
            f"header is {MANIFEST_HEADER.size} bytes"
        )
    magic, version, n_shards, body_len, body_crc = \
        MANIFEST_HEADER.unpack(raw[:MANIFEST_HEADER.size])
    if magic == MAGIC:
        raise HeapFormatError(
            f"{path} is a plain heap file, not a shard manifest"
        )
    if magic != MANIFEST_MAGIC:
        raise HeapFormatError(
            f"{path} is not an LP shard manifest (magic {magic!r})"
        )
    if version != MANIFEST_VERSION:
        raise HeapVersionError(
            f"{path} is shard manifest v{version}; this build reads "
            f"v{MANIFEST_VERSION}"
        )
    if len(raw) < MANIFEST_BODY_OFFSET + body_len:
        raise HeapTruncatedError(
            f"{path}: manifest declares a {body_len}-byte body but the "
            f"file holds only {len(raw) - MANIFEST_BODY_OFFSET}"
        )
    body = raw[MANIFEST_BODY_OFFSET:MANIFEST_BODY_OFFSET + body_len]
    if zlib.crc32(body) != body_crc:
        raise HeapCorruptError(
            f"{path}: manifest body checksum mismatch — the shard "
            "manifest is corrupt"
        )
    try:
        doc = json.loads(body.decode("utf-8"))
        line_size = int(doc["line_size"])
        block_lines = int(doc["block_lines"])
        shard_names = tuple(str(name) for name in doc["shards"])
        block_map: dict[int, int] = {}
        for start, count, shard in doc["extents"]:
            for block in range(int(start), int(start) + int(count)):
                block_map[block] = int(shard)
    except (UnicodeDecodeError, json.JSONDecodeError, KeyError,
            TypeError, ValueError) as exc:
        raise HeapCorruptError(
            f"{path}: manifest body is valid per checksum but not "
            f"decodable ({exc}) — refusing to guess"
        ) from None
    if n_shards <= 0 or len(shard_names) != n_shards:
        raise HeapFormatError(
            f"{path}: manifest header declares {n_shards} shard(s) but "
            f"the body names {len(shard_names)}"
        )
    if line_size <= 0 or line_size & (line_size - 1):
        raise HeapFormatError(
            f"{path}: nonsensical manifest line size {line_size}"
        )
    if block_lines <= 0:
        raise HeapFormatError(
            f"{path}: nonsensical address-block granularity "
            f"{block_lines}"
        )
    for block, shard in block_map.items():
        if not 0 <= shard < n_shards:
            raise HeapCorruptError(
                f"{path}: address block {block} maps to shard {shard}, "
                f"outside the manifest's {n_shards} shard(s)"
            )
    return ShardManifest(n_shards=n_shards, line_size=line_size,
                         block_lines=block_lines,
                         shard_names=shard_names, block_map=block_map)


def pack_manifest(manifest: ShardManifest) -> bytes:
    """Serialize a shard manifest (header + CRC-guarded JSON body).

    The block→shard table is run-length encoded as
    ``[start_block, n_blocks, shard]`` extents — contiguous buffers
    produce one extent each, keeping the manifest small even at
    single-line block granularity.
    """
    extents: list[list[int]] = []
    for block in sorted(manifest.block_map):
        shard = manifest.block_map[block]
        if extents and extents[-1][2] == shard \
                and extents[-1][0] + extents[-1][1] == block:
            extents[-1][1] += 1
        else:
            extents.append([block, 1, shard])
    body = json.dumps(
        {
            "line_size": manifest.line_size,
            "block_lines": manifest.block_lines,
            "shards": list(manifest.shard_names),
            "extents": extents,
        },
        separators=(",", ":"),
    ).encode("utf-8")
    header = MANIFEST_HEADER.pack(MANIFEST_MAGIC, MANIFEST_VERSION,
                                  manifest.n_shards, len(body),
                                  zlib.crc32(body))
    return header + b"\0" * (MANIFEST_BODY_OFFSET - len(header)) + body
