"""Sharded multi-heap NVM scale-out: N mapped heaps behind one backend.

:class:`MappedShadow` is a single mmap file, so write-back is one
serialized journal funnel and post-crash recovery is one sequential
pass over the whole heap. :class:`ShardedShadow` partitions the device
address space across N :class:`MappedShadow` shard files and is a
drop-in ``Device(shadow=...)`` / ``GlobalMemory(shadow=...)`` target:

* **Partitioning** — the address space is divided into fixed *address
  blocks* of ``block_lines`` consecutive cache lines; an explicit
  block→shard table is recorded in a CRC-guarded manifest file
  (:func:`repro.nvm.layout.pack_manifest`) next to the shards. A
  buffer always lives wholly inside one shard (its shadow must be one
  contiguous mapped view), so blocks are assigned buffer-at-a-time:
  blocks already claimed by an overlapping buffer pin the shard,
  otherwise the least-loaded shard wins. Every shard file is an
  ordinary v1 heap mirroring the *full* device address space
  (sparse), so entries keep their global ``base_addr``.

* **Containment** — each shard keeps its own v1 header and torn-write
  journal, so a write torn by a crash is contained to the shard it
  targeted. This is sound for exactly the reason the paper's recovery
  is block-parallel: an LP region is a thread block, and no checksum
  couples two blocks that land in different shards.

* **Fan-out** — :meth:`arm` partitions a write-back's lines by shard
  and arms each involved shard's journal; :meth:`commit` commits them
  in ascending shard order. Per-shard ``writeback_listener`` hooks
  fire inside each shard's own armed window, which is what lets the
  crash harness kill *one* shard's write-back mid-arm while the other
  shards stay clean.

* **Concurrent recovery** — :meth:`open` validates and reopens all
  shards concurrently (one thread per shard), and
  :meth:`shard_of_block` exposes the block→shard affinity hint the
  parallel engine uses to keep each worker's validate/recover chunks
  shard-local.

A manifest update is an atomic write-to-temp + ``os.replace``, so a
kill mid-update leaves the previous valid manifest — torn manifests
cannot happen, only stale-but-consistent ones, and the directory of
each shard is the ground truth the manifest must agree with at open.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.errors import (
    AllocationError,
    HeapCorruptError,
    HeapFormatError,
    HeapLayoutError,
    HeapTruncatedError,
)
from repro.nvm import layout
from repro.nvm.layout import (
    DEFAULT_DATA_CAPACITY,
    DEFAULT_DIR_CAPACITY,
    DEFAULT_SHARD_BLOCK_LINES,
    JOURNAL_CAPACITY,
    HeapEntry,
    ShardManifest,
)
from repro.nvm.mapped import MappedShadow, TornWindow
from repro.obs import current as _recorder

__all__ = [
    "DEFAULT_SHARD_BLOCK_LINES",
    "ShardedShadow",
    "shard_path",
]


def shard_path(manifest_path, shard: int) -> Path:
    """Path of one shard's heap file next to its manifest."""
    manifest_path = Path(manifest_path)
    return manifest_path.with_name(f"{manifest_path.name}.shard{shard}")


class ShardedShadow:
    """N mapped heap shards behind the single shadow-backend contract.

    Use :meth:`create` for a fresh sharded heap and :meth:`open` to
    reconstruct one cold from its manifest after a crash; both return
    an object interchangeable with :class:`MappedShadow` everywhere a
    shadow backend is accepted (``Device``, ``GlobalMemory``, the
    crash harness, ``adopt``/``enter_worker_mode`` flows).
    """

    def __init__(self, path: Path, shards: list[MappedShadow],
                 line_size: int, block_lines: int,
                 block_map: dict[int, int],
                 entries: dict[str, HeapEntry],
                 owner: dict[str, int],
                 torn_by_shard: dict[int, TornWindow]) -> None:
        self.path = Path(path)
        #: The shard heaps, index == shard id.
        self.shards = shards
        self.line_size = line_size
        self.block_lines = block_lines
        #: Address block id -> owning shard (the manifest table).
        self._block_map = block_map
        #: Merged allocation-ordered directory across all shards.
        self.entries = entries
        #: Buffer name -> owning shard id.
        self._owner = owner
        #: Per-shard torn windows found at :meth:`open`.
        self.torn_by_shard = torn_by_shard
        #: Merged torn window across shards (``None`` when clean).
        self.torn = self._merge_torn(torn_by_shard)
        #: Sharded-level hooks, mirroring :class:`MappedShadow`. The
        #: write-back listener fires *before* any shard journal
        #: clears; per-shard listeners (``shards[k].writeback_listener``)
        #: fire inside shard ``k``'s own armed window.
        self.writeback_listener = None
        self.arm_listener = None
        self.lines_written = 0
        #: Last :meth:`arm` partition: shard id -> armed line count.
        self._armed: dict[int, int] = {}
        self._closed = False
        self._sealed = False

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path,
        n_shards: int,
        line_size: int = 128,
        dir_capacity: int = DEFAULT_DIR_CAPACITY,
        data_capacity: int = DEFAULT_DATA_CAPACITY,
        block_lines: int = DEFAULT_SHARD_BLOCK_LINES,
    ) -> "ShardedShadow":
        """Create a fresh manifest + ``n_shards`` empty shard heaps."""
        if n_shards <= 0:
            raise HeapFormatError("a sharded heap needs n_shards >= 1")
        if block_lines <= 0:
            raise HeapFormatError("block_lines must be positive")
        path = Path(path)
        rec = _recorder()
        with rec.trace.span("heap.sharded.create", cat="nvm", track="nvm",
                            path=str(path), shards=n_shards):
            shards = [
                MappedShadow.create(shard_path(path, k), line_size,
                                    dir_capacity, data_capacity)
                for k in range(n_shards)
            ]
        heap = cls(path, shards, line_size, block_lines, block_map={},
                   entries={}, owner={}, torn_by_shard={})
        heap._write_manifest()
        if rec.metrics.active:
            rec.metrics.set_gauge("nvm.sharded.shards", n_shards)
        return heap

    @classmethod
    def open(cls, path) -> "ShardedShadow":
        """Reopen a cold sharded heap from its manifest, concurrently.

        Each shard is validated and reopened on its own thread (one
        :meth:`MappedShadow.open` per shard, so per-shard torn windows
        and typed errors are exactly the single-heap ones). Raises the
        same ``Heap*`` errors as :meth:`MappedShadow.open`, plus
        :class:`~repro.errors.HeapCorruptError` when the manifest and
        the shard directories disagree.
        """
        path = Path(path)
        rec = _recorder()
        with rec.trace.span("heap.sharded.reopen", cat="nvm", track="nvm",
                            path=str(path)):
            manifest = cls._read_manifest(path)

            def open_shard(k: int) -> MappedShadow:
                with rec.trace.span("heap.shard.reopen", cat="nvm",
                                    track="nvm", shard=k):
                    return MappedShadow.open(
                        path.with_name(manifest.shard_names[k]))

            opened: list[MappedShadow | None] = [None] * manifest.n_shards
            if manifest.n_shards == 1:
                opened[0] = open_shard(0)
            else:
                with ThreadPoolExecutor(
                        max_workers=manifest.n_shards) as pool:
                    futures = [pool.submit(open_shard, k)
                               for k in range(manifest.n_shards)]
                    try:
                        for k, future in enumerate(futures):
                            opened[k] = future.result()
                    except BaseException:
                        for shard in opened:
                            if shard is not None:
                                shard.close()
                        raise
            shards = [shard for shard in opened if shard is not None]
            heap = cls._assemble(path, manifest, shards)
        if rec.metrics.active:
            rec.metrics.inc("nvm.sharded.reopens")
            rec.metrics.set_gauge("nvm.sharded.shards", heap.n_shards)
            for k, torn in heap.torn_by_shard.items():
                rec.metrics.inc("nvm.sharded.torn_lines", torn.n_lines,
                                shard=str(k))
        if rec.trace.enabled and heap.torn is not None:
            rec.trace.instant(
                "heap.sharded.torn", cat="nvm", track="nvm",
                n_lines=heap.torn.n_lines,
                shards=sorted(heap.torn_by_shard),
            )
        return heap

    @classmethod
    def _read_manifest(cls, path: Path) -> ShardManifest:
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise HeapTruncatedError(
                f"cannot read shard manifest {path}: {exc}"
            ) from None
        return layout.parse_manifest(raw, path)

    @classmethod
    def _assemble(cls, path: Path, manifest: ShardManifest,
                  shards: list[MappedShadow]) -> "ShardedShadow":
        """Cross-check manifest vs shard directories and merge them."""
        entries: dict[str, HeapEntry] = {}
        owner: dict[str, int] = {}
        torn_by_shard: dict[int, TornWindow] = {}
        for k, shard in enumerate(shards):
            if shard.line_size != manifest.line_size:
                raise HeapCorruptError(
                    f"{path}: shard {k} has line size {shard.line_size}, "
                    f"manifest says {manifest.line_size}"
                )
            for name, entry in shard.entries.items():
                if name in owner:
                    raise HeapCorruptError(
                        f"{path}: buffer {name!r} appears in shard "
                        f"{owner[name]} and shard {k}"
                    )
                first, last = entry.line_span(manifest.line_size)
                for line in (first, max(first, last - 1)):
                    if manifest.shard_of_line(line) != k:
                        raise HeapCorruptError(
                            f"{path}: manifest maps buffer {name!r} "
                            f"(line {line}) away from shard {k}, where "
                            "its directory entry lives"
                        )
                owner[name] = k
            if shard.torn is not None:
                torn_by_shard[k] = shard.torn
        for name, entry in sorted(
                ((name, entry) for shard in shards
                 for name, entry in shard.entries.items()),
                key=lambda item: item[1].base_addr):
            entries[name] = entry
        return cls(path, shards, manifest.line_size,
                   manifest.block_lines, dict(manifest.block_map),
                   entries, owner, torn_by_shard)

    # ------------------------------------------------------------------
    # Shadow-backend interface (GlobalMemory plugs in here)
    # ------------------------------------------------------------------

    def attach(self, buf) -> np.ndarray:
        """Home ``buf`` in one shard and record the block→shard claim."""
        self._check_open()
        self._check_writable()
        if buf.name in self.entries:
            raise AllocationError(
                f"buffer {buf.name!r} already lives in sharded heap "
                f"{self.path}"
            )
        blocks = self._blocks_of(buf.base_addr, buf.padded_bytes)
        shard_id = self._place(buf.name, blocks)
        new_blocks = [b for b in blocks if b not in self._block_map]
        for block in new_blocks:
            self._block_map[block] = shard_id
        try:
            view = self.shards[shard_id].attach(buf)
            self._write_manifest()
        except Exception:
            for block in new_blocks:
                del self._block_map[block]
            self.shards[shard_id].detach(buf.name)
            raise
        self.entries[buf.name] = self.shards[shard_id].entries[buf.name]
        self._owner[buf.name] = shard_id
        return view

    def detach(self, name: str) -> None:
        """Drop a freed buffer from its shard and release its blocks."""
        self._check_open()
        if name not in self.entries:
            return
        shard_id = self._owner.pop(name)
        entry = self.entries.pop(name)
        self.shards[shard_id].detach(name)
        first, last = entry.line_span(self.line_size)
        for block in range(first // self.block_lines,
                           max(first, last - 1) // self.block_lines + 1):
            if self._block_map.get(block) == shard_id \
                    and not self._block_in_use(block):
                del self._block_map[block]
        self._write_manifest()

    def view(self, name: str) -> np.ndarray:
        """The mapped NVM image of one entry, from its owning shard."""
        self._check_open()
        return self.shards[self._owner[name]].view(name)

    def adopt(self, memory) -> None:
        """Swap a rebuilt memory's shadows for the shards' cold images.

        Same contract as :meth:`MappedShadow.adopt`, validated against
        the *union* directory: the rebuilt memory must reproduce every
        persistent buffer across all shards, byte-compatible, and each
        buffer's shadow becomes a view into its owning shard.
        """
        self._check_open()
        rec = _recorder()
        with rec.trace.span("heap.adopt", cat="nvm", track="nvm",
                            buffers=len(self.entries),
                            shards=self.n_shards):
            persistent = {
                name: buf for name, buf in memory.buffers.items()
                if buf.persistent
            }
            if memory.line_size != self.line_size:
                raise HeapLayoutError(
                    f"memory line size {memory.line_size} != sharded "
                    f"heap line size {self.line_size}"
                )
            missing = sorted(set(self.entries) - set(persistent))
            extra = sorted(set(persistent) - set(self.entries))
            if missing or extra:
                raise HeapLayoutError(
                    f"sharded heap {self.path} directory does not match "
                    f"the rebuilt memory: missing from memory "
                    f"{missing[:5]}, absent from heap {extra[:5]}"
                )
            for name, entry in self.entries.items():
                buf = persistent[name]
                got = (buf.dtype.str, tuple(buf.shape), buf.base_addr,
                       buf.nbytes)
                want = (entry.dtype.str, entry.shape, entry.base_addr,
                        entry.nbytes)
                if got != want:
                    raise HeapLayoutError(
                        f"buffer {name!r} diverged from the sharded heap "
                        f"directory: memory has (dtype, shape, addr, "
                        f"nbytes) = {got}, heap has {want}"
                    )
            for name, buf in persistent.items():
                shard = self.shards[self._owner[name]]
                view = shard.view(name)
                buf.shadow = view
                buf.data[:] = view
                shard._attached[name] = buf
            memory.cache.drop_all()
            memory.shadow_backend = self

    # ------------------------------------------------------------------
    # Write-back journal fan-out
    # ------------------------------------------------------------------

    def arm(self, line_ids) -> None:
        """Partition a write-back by shard and arm each shard's journal."""
        self._check_open()
        self._check_writable()
        parts: dict[int, list[int]] = {}
        for lid in line_ids:
            parts.setdefault(self._shard_of_line(int(lid)), []).append(
                int(lid))
        for shard_id in sorted(parts):
            self.shards[shard_id].arm(parts[shard_id])
        self._armed = {shard_id: len(lines)
                       for shard_id, lines in parts.items()}
        rec = _recorder()
        if rec.metrics.active:
            rec.metrics.inc("nvm.sharded.writeback.shards", len(parts))
        listener = self.arm_listener
        if listener is not None:
            exact = all(n <= JOURNAL_CAPACITY for n in self._armed.values())
            listener([int(lid) for lid in line_ids],
                     "exact" if exact else "range")

    def commit(self, n_lines: int) -> None:
        """Complete the fanned-out write-back, shard by shard.

        The sharded-level listener fires first — while *every* involved
        shard journal is still armed, matching the single-heap "kill
        here leaves the journal armed" semantics. Each shard then
        commits in ascending order; a per-shard listener that kills the
        process leaves that shard (and only later-ordered shards of the
        same write-back) armed while already-committed shards are
        clean.
        """
        self._check_writable()
        self.lines_written += n_lines
        listener = self.writeback_listener
        if listener is not None:
            listener(self.lines_written)
        armed, self._armed = self._armed, {}
        for shard_id in sorted(armed):
            self.shards[shard_id].commit(armed[shard_id])

    def torn_lines(self) -> list[int]:
        """Merged torn-write window across all shards (maybe [])."""
        return list(self.torn.lines) if self.torn is not None else []

    def torn_by_buffer(self) -> dict[str, int]:
        """Torn-write suspects attributed to buffers, all shards."""
        out: dict[str, int] = {}
        for shard in self.shards:
            out.update(shard.torn_by_buffer())
        return out

    # ------------------------------------------------------------------
    # Durability and lifecycle
    # ------------------------------------------------------------------

    def seal(self) -> None:
        """Seal every shard for worker-process fork safety."""
        self._sealed = True
        for shard in self.shards:
            shard.seal()

    def sync(self) -> None:
        """``msync`` all shards (concurrently when there are several)."""
        self._check_open()
        self._check_writable()
        rec = _recorder()
        with rec.trace.span("heap.sharded.sync", cat="nvm", track="nvm",
                            shards=self.n_shards):
            if self.n_shards == 1:
                self.shards[0].sync()
            else:
                with ThreadPoolExecutor(
                        max_workers=self.n_shards) as pool:
                    for future in [pool.submit(shard.sync)
                                   for shard in self.shards]:
                        future.result()

    def close(self) -> None:
        """Flush and release every shard mapping."""
        if self._closed:
            return
        self._closed = True
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ShardedShadow":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Shard topology accessors (engine affinity, harness, inspector)
    # ------------------------------------------------------------------

    def shard_of_block(self, block_id: int) -> int:
        """Affinity hint: the shard a *thread block*'s chunk prefers.

        LP regions (thread blocks) are mutually independent, so any
        deterministic partition is sound; a simple modulo keeps the
        parallel engine's contiguous chunks spread evenly across
        shard-affine workers.
        """
        return int(block_id) % self.n_shards

    def shard_of_buffer(self, name: str) -> int:
        """The shard that owns a directory buffer."""
        return self._owner[name]

    def shard_paths(self) -> list[Path]:
        return [shard.path for shard in self.shards]

    def manifest(self) -> ShardManifest:
        """The current manifest view of this heap's partitioning."""
        return ShardManifest(
            n_shards=self.n_shards, line_size=self.line_size,
            block_lines=self.block_lines,
            shard_names=tuple(shard.path.name for shard in self.shards),
            block_map=dict(self._block_map),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise HeapFormatError(f"sharded heap {self.path} is closed")

    def _check_writable(self) -> None:
        if self._sealed:
            raise HeapFormatError(
                f"sharded heap {self.path} is sealed in a worker "
                "process; only the parent may persist"
            )

    def _shard_of_line(self, line_id: int) -> int:
        block = line_id // self.block_lines
        try:
            return self._block_map[block]
        except KeyError:
            raise HeapLayoutError(
                f"line {line_id} (address block {block}) belongs to no "
                f"shard of {self.path}"
            ) from None

    def _blocks_of(self, base_addr: int, padded_bytes: int) -> list[int]:
        first_line = base_addr // self.line_size
        last_line = first_line + max(padded_bytes // self.line_size, 1) - 1
        return list(range(first_line // self.block_lines,
                          last_line // self.block_lines + 1))

    def _block_in_use(self, block: int) -> bool:
        lo = block * self.block_lines
        hi = lo + self.block_lines
        for entry in self.entries.values():
            first, last = entry.line_span(self.line_size)
            if first < hi and last > lo:
                return True
        return False

    def _place(self, name: str, blocks: list[int]) -> int:
        """Pick the owning shard for a new buffer's address blocks."""
        pinned = {self._block_map[b] for b in blocks
                  if b in self._block_map}
        if len(pinned) > 1:
            raise HeapLayoutError(
                f"buffer {name!r} spans address blocks already split "
                f"across shards {sorted(pinned)} — a buffer must live "
                "wholly inside one shard"
            )
        if pinned:
            return pinned.pop()
        loads = [0] * self.n_shards
        for shard_id in self._block_map.values():
            loads[shard_id] += 1
        return min(range(self.n_shards), key=lambda k: (loads[k], k))

    def _write_manifest(self) -> None:
        """Atomically persist the manifest (write-temp + rename)."""
        payload = layout.pack_manifest(self.manifest())
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "wb") as fileobj:
            fileobj.write(payload)
            fileobj.flush()
            os.fsync(fileobj.fileno())
        os.replace(tmp, self.path)

    @staticmethod
    def _merge_torn(torn_by_shard: dict[int, TornWindow]) \
            -> TornWindow | None:
        if not torn_by_shard:
            return None
        lines: list[int] = []
        for torn in torn_by_shard.values():
            lines.extend(torn.lines)
        exact = all(torn.exact for torn in torn_by_shard.values())
        return TornWindow(lines=tuple(sorted(lines)), exact=exact)


def open_heap(path) -> "MappedShadow | ShardedShadow":
    """Open an existing durable heap, dispatching on its on-disk magic.

    A plain ``LPNVHEAP`` file reopens as a :class:`MappedShadow`; an
    ``LPNVMANI`` shard manifest reopens as a :class:`ShardedShadow`
    (which reopens every shard). Long-lived services use this so one
    ``--heap`` path restarts correctly whatever layout created it.
    """
    with open(path, "rb") as fileobj:
        head = fileobj.read(len(layout.MANIFEST_MAGIC))
    if layout.is_manifest(head):
        return ShardedShadow.open(path)
    return MappedShadow.open(path)
