"""NVM write accounting for the persistence domain.

The paper's Section VII-3 measures *write amplification*: how many more
lines reach main memory with LP enabled, compared to the baseline
(0.5 % - 2.2 % across SPMV / MM / SAD, entirely due to checksum
stores). :class:`WriteStats` counts every line write into the NVM
shadow, attributed to the buffer it landed in and to the reason it was
written back, so the benchmark harness can reproduce that measurement
directly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum


class WritebackReason(Enum):
    """Why a line was written to NVM."""

    #: Capacity eviction from the write-back cache (the normal LP path).
    EVICTION = "eviction"
    #: Explicit end-of-run drain (shutdown / checkpoint).
    DRAIN = "drain"
    #: A crash plan persisted the line just before the failure.
    CRASH_RACE = "crash_race"
    #: Explicit cache-line write-back (``clwb``-style, Eager Persistency).
    FLUSH = "flush"


@dataclass
class WriteStats:
    """Counts of lines written back into the NVM shadow."""

    line_size: int = 128
    by_reason: Counter = field(default_factory=Counter)
    by_buffer: Counter = field(default_factory=Counter)

    def record(self, reason: WritebackReason, buffer_name: str, n_lines: int = 1) -> None:
        """Record ``n_lines`` written back from ``buffer_name``."""
        if n_lines < 0:
            raise ValueError("n_lines must be non-negative")
        self.by_reason[reason] += n_lines
        self.by_buffer[buffer_name] += n_lines

    @property
    def total_lines(self) -> int:
        """All NVM line writes, regardless of reason."""
        return sum(self.by_reason.values())

    @property
    def total_bytes(self) -> int:
        """All NVM traffic in bytes."""
        return self.total_lines * self.line_size

    def lines_for_buffer(self, name: str) -> int:
        """NVM line writes attributed to one buffer."""
        return self.by_buffer.get(name, 0)

    def lines_for_buffers(self, prefix: str) -> int:
        """NVM line writes for all buffers whose name has ``prefix``.

        Checksum-table buffers are conventionally named ``__lp_...`` so
        the write-amplification bench can separate checksum traffic from
        application data traffic.
        """
        return sum(
            count
            for name, count in self.by_buffer.items()
            if name.startswith(prefix)
        )

    def reset(self) -> None:
        """Zero all counters (e.g. between benchmark phases)."""
        self.by_reason.clear()
        self.by_buffer.clear()

    def to_dict(self) -> dict:
        """The full breakdown as one JSON-serializable dict."""
        return {
            "line_size": self.line_size,
            "total_lines": self.total_lines,
            "total_bytes": self.total_bytes,
            "by_reason": {reason.value: self.by_reason[reason]
                          for reason in sorted(self.by_reason,
                                               key=lambda r: r.value)},
            "by_buffer": {name: self.by_buffer[name]
                          for name in sorted(self.by_buffer)},
        }


def write_amplification(lp_stats: WriteStats, baseline_stats: WriteStats) -> float:
    """Fractional increase in NVM line writes caused by LP.

    Returns e.g. ``0.022`` when LP wrote 2.2 % more lines than the
    baseline run of the same kernel.
    """
    base = baseline_stats.total_lines
    if base <= 0:
        raise ValueError("baseline wrote no lines; cannot compute amplification")
    return lp_stats.total_lines / base - 1.0
