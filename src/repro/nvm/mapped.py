"""Durable mmap-backed NVM shadow: the heap that outlives the process.

Everywhere else in the simulator the NVM image of a persistent buffer
is a plain host array (``Buffer.shadow``) — a crash is an in-process
simulation and nothing survives the interpreter. :class:`MappedShadow`
replaces those arrays with views into one memory-mapped **heap file**,
so every line the write-back cache evicts (or a drain flushes) lands in
a real file that survives ``SIGKILL``. The out-of-process crash harness
(:mod:`repro.harness`) is built on exactly this property: kill a worker
process mid-launch, reopen the heap cold in the parent, and run the
paper's validate → recover pipeline against "the data found in NVM".

On-disk format (version 1, little-endian)::

    offset 0      header   magic "LPNVHEAP", version, line size,
                           directory capacity, data offset,
                           directory length, directory CRC32
    offset 64     journal  write-back intent record: lines whose
                           NVM copy was in flight when the process
                           died (the torn-write window)
    offset 4224   directory  JSON array of buffer descriptors
                           (name, dtype, shape, base address, role)
    data offset   data     each persistent buffer's shadow image at
                           ``data offset + buffer.base_addr`` — the
                           file mirrors the device address space

The directory is rewritten (and CRC'd) on every allocate/free, so a
kill at any instant leaves a self-describing file. Data-region pages
are ``MAP_SHARED``: a killed process's completed stores are already in
the page cache and therefore visible to whoever reopens the file.
:meth:`MappedShadow.open` refuses corrupt, truncated or
version-mismatched files with typed errors — never silent garbage.

Torn writes: :meth:`arm` records the line ids of a write-back *before*
the data copy and :meth:`commit` clears the record after it. A process
killed inside that window leaves the journal armed; the next
:meth:`open` surfaces those lines as :attr:`torn`, attributable to
buffers via :meth:`torn_by_buffer`. This is deliberately conservative:
an armed journal means "these lines may hold a mix of old and new
bytes", which is exactly the state LP's checksum validation exists to
catch.
"""

from __future__ import annotations

import mmap
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import (
    AllocationError,
    HeapFormatError,
    HeapFullError,
    HeapLayoutError,
    HeapTruncatedError,
    ReproError,
)
from repro.nvm import layout
from repro.nvm.layout import (
    DEFAULT_DATA_CAPACITY,
    DEFAULT_DIR_CAPACITY,
    JOURNAL_CAPACITY,
    MAGIC,
    VERSION,
    HeapEntry,
    table_role,
)
from repro.obs import current as _recorder

# The byte-level format lives in :mod:`repro.nvm.layout`, shared with
# the read-only inspector. These aliases keep the historical private
# names importable.
_HEADER = layout.HEADER
_JOURNAL_HEAD = layout.JOURNAL_HEAD
_HEADER_OFFSET = layout.HEADER_OFFSET
_JOURNAL_OFFSET = layout.JOURNAL_OFFSET
_DIR_OFFSET = layout.DIR_OFFSET
_JOURNAL_EMPTY = layout.JOURNAL_EMPTY
_JOURNAL_EXACT = layout.JOURNAL_EXACT
_JOURNAL_RANGE = layout.JOURNAL_RANGE

__all__ = [
    "DEFAULT_DATA_CAPACITY",
    "DEFAULT_DIR_CAPACITY",
    "JOURNAL_CAPACITY",
    "MAGIC",
    "VERSION",
    "HeapEntry",
    "MappedShadow",
    "TornWindow",
    "table_role",
]


@dataclass(frozen=True)
class TornWindow:
    """Write-back intent found armed at open: the torn-write suspects."""

    #: Exact line ids when the journal recorded them; for oversized
    #: write-backs this is every line in the recorded [first, last]
    #: range (conservative).
    lines: tuple[int, ...]
    #: True when ``lines`` is the exact armed set, False for the
    #: range fallback.
    exact: bool

    @property
    def n_lines(self) -> int:
        return len(self.lines)


class MappedShadow:
    """An mmap-backed persistence domain: the durable NVM heap.

    Use :meth:`create` for a fresh heap (then hand it to
    ``Device(shadow=...)`` / ``GlobalMemory(shadow=...)`` so every
    persistent allocation's shadow lives in the file), or :meth:`open`
    to reconstruct the directory from a cold file after a crash and
    :meth:`adopt` the images into a rebuilt
    :class:`~repro.gpu.memory.GlobalMemory`.
    """

    def __init__(self, path: Path, mm: mmap.mmap, fileobj,
                 line_size: int, dir_capacity: int, data_offset: int,
                 entries: dict[str, HeapEntry],
                 torn: TornWindow | None = None) -> None:
        self.path = Path(path)
        self._mm = mm
        self._file = fileobj
        self.line_size = line_size
        self.dir_capacity = dir_capacity
        self.data_offset = data_offset
        #: Allocation-ordered directory: name -> :class:`HeapEntry`.
        self.entries = entries
        #: Torn-write suspects found at :meth:`open` (``None`` for a
        #: fresh heap or a cleanly closed one).
        self.torn = torn
        #: Called by :meth:`commit` with the cumulative line count —
        #: the crash harness's write-back kill trigger. Invoked while
        #: the journal is still armed, so a trigger that kills the
        #: process models a torn write-back.
        self.writeback_listener = None
        #: Optional ``f(line_ids, mode)`` hook fired at the top of the
        #: journal window, right after the intent record lands and
        #: before any data byte moves (``mode`` is ``"exact"`` or
        #: ``"range"``). The crash-state model checker records every
        #: arm bracket through this to enumerate torn-write windows.
        self.arm_listener = None
        #: Total lines committed through this handle.
        self.lines_written = 0
        #: Live buffers whose ``shadow`` views this heap owns
        #: (re-attached after a grow remaps the file).
        self._attached: dict[str, object] = {}
        self._closed = False
        self._sealed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path,
        line_size: int = 128,
        dir_capacity: int = DEFAULT_DIR_CAPACITY,
        data_capacity: int = DEFAULT_DATA_CAPACITY,
    ) -> "MappedShadow":
        """Create a fresh heap file (truncating any existing one)."""
        if line_size <= 0 or line_size & (line_size - 1):
            raise HeapFormatError("line_size must be a positive power of two")
        data_offset = _DIR_OFFSET + dir_capacity
        data_offset += (-data_offset) % line_size
        path = Path(path)
        fileobj = open(path, "w+b")
        fileobj.truncate(data_offset + data_capacity)
        mm = mmap.mmap(fileobj.fileno(), 0, access=mmap.ACCESS_WRITE)
        heap = cls(path, mm, fileobj, line_size, dir_capacity,
                   data_offset, entries={})
        heap._write_directory()
        heap._write_journal_empty()
        return heap

    @classmethod
    def open(cls, path) -> "MappedShadow":
        """Reopen a cold heap file, validating format and directory.

        Raises :class:`~repro.errors.HeapTruncatedError`,
        :class:`~repro.errors.HeapFormatError`,
        :class:`~repro.errors.HeapVersionError` or
        :class:`~repro.errors.HeapCorruptError` rather than ever
        returning garbage. An armed write-back journal is surfaced as
        :attr:`torn` and cleared in the file.
        """
        path = Path(path)
        rec = _recorder()
        with rec.trace.span("heap.reopen", cat="nvm", track="nvm",
                            path=str(path)):
            heap = cls._open_validated(path)
        if rec.metrics.active:
            rec.metrics.inc("nvm.mapped.reopens")
            if heap.torn is not None:
                for name, n in heap.torn_by_buffer().items():
                    rec.metrics.inc("nvm.mapped.torn_lines", n,
                                    buffer=name)
        if rec.trace.enabled and heap.torn is not None:
            rec.trace.instant(
                "heap.torn", cat="nvm", track="nvm",
                n_lines=heap.torn.n_lines, exact=heap.torn.exact,
            )
        return heap

    @classmethod
    def _open_validated(cls, path: Path) -> "MappedShadow":
        try:
            size = os.path.getsize(path)
        except OSError as exc:
            raise HeapTruncatedError(f"cannot stat heap file {path}: {exc}") \
                from None
        if size < _DIR_OFFSET:
            raise HeapTruncatedError(
                f"heap file {path} is {size} bytes — smaller than the "
                f"{_DIR_OFFSET}-byte header+journal region"
            )
        fileobj = open(path, "r+b")
        try:
            mm = mmap.mmap(fileobj.fileno(), 0, access=mmap.ACCESS_WRITE)
        except (ValueError, OSError) as exc:
            fileobj.close()
            raise HeapTruncatedError(f"cannot map heap file {path}: {exc}") \
                from None

        try:
            raw = mm[_HEADER_OFFSET:_HEADER_OFFSET + _HEADER.size]
            header = layout.parse_header(raw, path)
            if size < header.data_offset:
                raise HeapTruncatedError(
                    f"{path}: file ends at {size} bytes, before its data "
                    f"region at {header.data_offset}"
                )
            dir_bytes = bytes(mm[_DIR_OFFSET:_DIR_OFFSET + header.dir_len])
            entries = layout.parse_directory(dir_bytes, header.dir_crc,
                                             path)
            extent = max(
                (e.base_addr + e.padded_bytes for e in entries.values()),
                default=0,
            )
            if size < header.data_offset + extent:
                raise HeapTruncatedError(
                    f"{path}: directory declares {extent} data bytes but "
                    f"the file holds only {size - header.data_offset}"
                )
        except ReproError:
            mm.close()
            fileobj.close()
            raise

        heap = cls(path, mm, fileobj, header.line_size,
                   header.dir_capacity, header.data_offset, entries)
        heap.torn = heap._read_journal()
        heap._write_journal_empty()
        return heap

    # ------------------------------------------------------------------
    # Shadow-backend interface (GlobalMemory plugs in here)
    # ------------------------------------------------------------------

    def attach(self, buf) -> np.ndarray:
        """Give ``buf``'s NVM image a home in the heap file.

        Registers a directory entry, grows the file if needed, seeds
        the mapped region from the buffer's current shadow (its
        ``init`` data, or zeros) and returns the mapped view to use as
        ``buf.shadow``.
        """
        self._check_open()
        self._check_writable()
        if buf.name in self.entries:
            raise AllocationError(
                f"buffer {buf.name!r} already lives in heap {self.path}"
            )
        entry = HeapEntry(
            name=buf.name, dtype=buf.dtype, shape=tuple(buf.shape),
            base_addr=buf.base_addr, nbytes=buf.nbytes,
            padded_bytes=buf.padded_bytes, role=table_role(buf.name),
        )
        self._ensure_capacity(entry.base_addr + entry.padded_bytes)
        self.entries[entry.name] = entry
        try:
            self._write_directory()
        except HeapFullError:
            del self.entries[entry.name]
            raise
        view = self.view(entry.name)
        if buf.shadow is not None:
            view[:] = buf.shadow
        else:
            view[:] = 0
        self._attached[entry.name] = buf
        return view

    def detach(self, name: str) -> None:
        """Drop a freed buffer from the directory."""
        self._check_open()
        if name in self.entries:
            del self.entries[name]
            self._attached.pop(name, None)
            self._write_directory()

    def view(self, name: str) -> np.ndarray:
        """The mapped NVM image of one directory entry (1-D, typed)."""
        self._check_open()
        entry = self.entries[name]
        return np.frombuffer(
            self._mm, dtype=entry.dtype, count=entry.size,
            offset=self.data_offset + entry.base_addr,
        )

    def adopt(self, memory) -> None:
        """Swap a rebuilt memory's shadows for this heap's cold images.

        ``memory`` must have been set up exactly as before the crash
        (same allocation sequence — workload setup and LP
        instrumentation are deterministic, so re-running them
        reproduces the layout). Every persistent buffer's shadow
        becomes a mapped view and its volatile image is reset to the
        persisted contents — the state a machine reboots into. The
        memory's write-back target becomes this heap.

        Raises :class:`~repro.errors.HeapLayoutError` when the live
        layout disagrees with the directory in any way.
        """
        self._check_open()
        rec = _recorder()
        with rec.trace.span("heap.adopt", cat="nvm", track="nvm",
                            buffers=len(self.entries)):
            persistent = {
                name: buf for name, buf in memory.buffers.items()
                if buf.persistent
            }
            if memory.line_size != self.line_size:
                raise HeapLayoutError(
                    f"memory line size {memory.line_size} != heap line "
                    f"size {self.line_size}"
                )
            missing = sorted(set(self.entries) - set(persistent))
            extra = sorted(set(persistent) - set(self.entries))
            if missing or extra:
                raise HeapLayoutError(
                    f"heap {self.path} directory does not match the "
                    f"rebuilt memory: missing from memory {missing[:5]}, "
                    f"absent from heap {extra[:5]}"
                )
            for name, entry in self.entries.items():
                buf = persistent[name]
                got = (buf.dtype.str, tuple(buf.shape), buf.base_addr,
                       buf.nbytes)
                want = (entry.dtype.str, entry.shape, entry.base_addr,
                        entry.nbytes)
                if got != want:
                    raise HeapLayoutError(
                        f"buffer {name!r} diverged from the heap "
                        f"directory: memory has (dtype, shape, addr, "
                        f"nbytes) = {got}, heap has {want}"
                    )
            for name, buf in persistent.items():
                view = self.view(name)
                buf.shadow = view
                buf.data[:] = view
                self._attached[name] = buf
            # Reboot state: nothing is pending persistence.
            memory.cache.drop_all()
            memory.shadow_backend = self

    # ------------------------------------------------------------------
    # Write-back journal (torn-write window)
    # ------------------------------------------------------------------

    def arm(self, line_ids) -> None:
        """Record write-back intent for ``line_ids`` before the copy."""
        self._check_open()
        self._check_writable()
        payload = layout.pack_journal(line_ids)
        self._mm[_JOURNAL_OFFSET:_JOURNAL_OFFSET + len(payload)] = payload
        rec = _recorder()
        if rec.trace.enabled:
            # The last event a kill-inside-the-window trace holds is
            # this arming record — the torn lines, named.
            rec.trace.instant(
                "nvm.writeback.arm", cat="nvm", track="nvm",
                n_lines=len(line_ids),
            )
        listener = self.arm_listener
        if listener is not None:
            exact = len(line_ids) <= JOURNAL_CAPACITY
            listener([int(lid) for lid in line_ids],
                     "exact" if exact else "range")

    def commit(self, n_lines: int) -> None:
        """Count a completed write-back and clear the intent record.

        The listener fires *before* the journal clears: a listener
        that kills the process (the harness's write-back trigger)
        leaves the journal armed, exactly like a power failure inside
        the copy.
        """
        self._check_writable()
        self.lines_written += n_lines
        listener = self.writeback_listener
        if listener is not None:
            listener(self.lines_written)
        self._write_journal_empty()

    def torn_lines(self) -> list[int]:
        """Line ids of the torn-write window found at open (maybe [])."""
        return list(self.torn.lines) if self.torn is not None else []

    def torn_by_buffer(self) -> dict[str, int]:
        """Torn-write suspects attributed to directory buffers."""
        if self.torn is None:
            return {}
        out: dict[str, int] = {}
        for entry in self.entries.values():
            first, last = entry.line_span(self.line_size)
            n = sum(1 for lid in self.torn.lines if first <= lid < last)
            if n:
                out[entry.name] = n
        return out

    def _read_journal(self) -> TornWindow | None:
        end = _JOURNAL_OFFSET + layout.journal_region_size()
        record = layout.parse_journal(self._mm[_JOURNAL_OFFSET:end],
                                      self.path)
        if not record.armed:
            return None
        return TornWindow(lines=record.lines, exact=record.exact)

    def _write_journal_empty(self) -> None:
        self._mm[_JOURNAL_OFFSET:_JOURNAL_OFFSET + _JOURNAL_HEAD.size] = \
            layout.pack_journal_empty()

    # ------------------------------------------------------------------
    # Durability and lifecycle
    # ------------------------------------------------------------------

    def seal(self) -> None:
        """Forbid further persistence through this handle (fork safety).

        A pool worker inherits the parent's ``MAP_SHARED`` mapping —
        zero-copy reads of the heap images stay valid, but the
        persistence domain (directory, journal, write-backs, msync)
        belongs to the parent alone. ``GlobalMemory.enter_worker_mode``
        seals the inherited handle so any accidental write-back in a
        worker fails loudly instead of corrupting the shared file.
        """
        self._sealed = True

    def sync(self) -> None:
        """``msync`` the whole heap (drain-time durability point)."""
        self._check_open()
        self._check_writable()
        with _recorder().trace.span("heap.sync", cat="nvm", track="nvm"):
            self._mm.flush()

    def close(self) -> None:
        """Flush and release the mapping.

        Outstanding numpy views keep their (still valid, still shared)
        pages alive; the mapping itself is only closed once they die.
        """
        if self._closed:
            return
        self._closed = True
        self._mm.flush()
        try:
            self._mm.close()
        except BufferError:
            # numpy views still reference the map; abandon it to GC.
            pass
        self._file.close()

    def __enter__(self) -> "MappedShadow":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise HeapFormatError(f"heap {self.path} is closed")

    def _check_writable(self) -> None:
        if self._sealed:
            raise HeapFormatError(
                f"heap {self.path} is sealed in a worker process; only "
                "the parent may persist"
            )

    def _write_directory(self) -> None:
        payload = layout.pack_directory(self.entries.values())
        if len(payload) > self.dir_capacity:
            raise HeapFullError(
                f"heap {self.path} directory region ({self.dir_capacity} "
                f"bytes) cannot hold {len(payload)} bytes of descriptors; "
                "recreate the heap with a larger dir_capacity"
            )
        header = layout.pack_header(self.line_size, self.dir_capacity,
                                    self.data_offset, payload)
        self._mm[_HEADER_OFFSET:_HEADER_OFFSET + len(header)] = header
        self._mm[_DIR_OFFSET:_DIR_OFFSET + len(payload)] = payload

    def _ensure_capacity(self, data_bytes: int) -> None:
        """Grow the file (sparse) so the data region holds ``data_bytes``."""
        need = self.data_offset + data_bytes
        size = os.path.getsize(self.path)
        if need <= size:
            return
        new_size = max(need, size * 2)
        self._file.truncate(new_size)
        old = self._mm
        self._mm = mmap.mmap(self._file.fileno(), 0,
                             access=mmap.ACCESS_WRITE)
        try:
            old.close()
        except BufferError:
            pass  # superseded views keep the old map alive until GC
        # Re-point every live buffer's shadow at the new mapping.
        for name, buf in self._attached.items():
            buf.shadow = self.view(name)
