"""Crash plans and fault injection for the persistence domain.

Two failure models are provided, matching the paper's methodology:

* **Crash** (:class:`CrashPlan`): power fails mid-kernel. Blocks that
  already ran may or may not have their stores persisted — a random
  subset of dirty cache lines happened to be evicted before the
  failure, the rest are lost. This exercises the LP recovery path.
* **Corruption** (:class:`FaultInjector`): random bit flips / element
  overwrites in the *persisted* image, used for the false-negative-rate
  study of checksum functions (Section IV-B's "random error
  injection").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.memory import GlobalMemory


@dataclass(frozen=True)
class CrashPlan:
    """When and how a launch fails.

    Parameters
    ----------
    after_blocks:
        Crash once this many thread blocks have completed. The remaining
        blocks never run. ``0`` crashes before any block.
    persist_fraction:
        Fraction of dirty cache lines that happened to be written back
        just before the failure (uniformly at random). ``0.0`` loses all
        dirty lines; ``1.0`` is equivalent to a clean drain.
    seed:
        RNG seed for the persisted-line lottery, for reproducible tests.
    """

    after_blocks: int = 0
    persist_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.after_blocks < 0:
            raise ValueError("after_blocks must be non-negative")
        if not 0.0 <= self.persist_fraction <= 1.0:
            raise ValueError("persist_fraction must be in [0, 1]")

    def rng(self) -> np.random.Generator:
        """The plan's deterministic random generator."""
        return np.random.default_rng(self.seed)


class FaultInjector:
    """Injects faults into the *persisted* (NVM) image of buffers.

    All injections deterministically derive from the seed, so a
    false-negative-rate sweep is exactly reproducible.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def flip_bit(
        self, memory: GlobalMemory, buffer_name: str, flat_index: int, bit: int
    ) -> None:
        """Flip one bit of one element in a buffer's NVM image.

        The volatile image is re-synchronized, modeling a post-crash
        reboot reading the corrupted NVM contents.
        """
        buf = memory[buffer_name]
        nbytes = buf.dtype.itemsize
        if not 0 <= bit < nbytes * 8:
            raise ValueError(f"bit {bit} out of range for {buf.dtype}")
        if not 0 <= flat_index < buf.size:
            raise ValueError(f"index {flat_index} out of range")
        byte_view = buf.shadow.view(np.uint8)
        pos = flat_index * nbytes + bit // 8
        byte_view[pos] ^= np.uint8(1 << (bit % 8))
        buf.data[:] = buf.shadow

    def flip_random_bits(
        self, memory: GlobalMemory, buffer_name: str, n_flips: int
    ) -> list[tuple[int, int]]:
        """Flip ``n_flips`` random (element, bit) pairs; return them."""
        buf = memory[buffer_name]
        bits_per_elem = buf.dtype.itemsize * 8
        out = []
        for _ in range(n_flips):
            idx = int(self._rng.integers(0, buf.size))
            bit = int(self._rng.integers(0, bits_per_elem))
            self.flip_bit(memory, buffer_name, idx, bit)
            out.append((idx, bit))
        return out

    def overwrite_elements(
        self,
        memory: GlobalMemory,
        buffer_name: str,
        flat_indices: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Overwrite NVM elements outright (a torn / stray write)."""
        buf = memory[buffer_name]
        idx = np.asarray(flat_indices)
        if idx.size and (idx.min() < 0 or idx.max() >= buf.size):
            raise ValueError("overwrite indices out of range")
        buf.shadow[idx] = np.asarray(values, dtype=buf.dtype)
        buf.data[:] = buf.shadow
