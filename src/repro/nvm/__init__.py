"""NVM persistence domain: write accounting, crash plans, fault
injection, and crash-consistency auditing.

Submodules are exposed lazily (PEP 562): :mod:`repro.gpu.memory`
imports :mod:`repro.nvm.model` while the ``gpu`` package is still
initializing, so this ``__init__`` must not import the higher-level
crash/audit modules eagerly.
"""

from repro.nvm.model import WritebackReason, WriteStats, write_amplification

_LAZY = {
    "AuditFailure": "repro.nvm.audit",
    "AuditReport": "repro.nvm.audit",
    "CrashSchedule": "repro.nvm.audit",
    "audit_crash_consistency": "repro.nvm.audit",
    "generate_schedules": "repro.nvm.audit",
    "CrashPlan": "repro.nvm.crash",
    "FaultInjector": "repro.nvm.crash",
    "MappedShadow": "repro.nvm.mapped",
    "HeapEntry": "repro.nvm.mapped",
    "TornWindow": "repro.nvm.mapped",
    "ShardedShadow": "repro.nvm.sharded",
    "open_heap": "repro.nvm.sharded",
    "ShardManifest": "repro.nvm.layout",
    "HeapDiff": "repro.nvm.inspect",
    "HeapReport": "repro.nvm.inspect",
    "ShardedHeapDiff": "repro.nvm.inspect",
    "ShardedHeapReport": "repro.nvm.inspect",
    "diff_heaps": "repro.nvm.inspect",
    "diff_paths": "repro.nvm.inspect",
    "inspect_heap": "repro.nvm.inspect",
    "inspect_path": "repro.nvm.inspect",
    "inspect_sharded": "repro.nvm.inspect",
}

__all__ = [
    "WriteStats",
    "WritebackReason",
    "write_amplification",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(_LAZY[name])
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
