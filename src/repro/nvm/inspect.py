"""Offline, read-only inspector for ``MappedShadow`` heap files.

``repro inspect <heap>`` answers "what state did the crash leave on
disk?" without running recovery and — critically — without *mutating*
the file: :meth:`MappedShadow.open` clears the torn-write journal as a
side effect, so forensics on a killed process's heap must never go
through it. This module maps the file ``ACCESS_READ`` and decodes the
same structs the writer emits via the shared :mod:`repro.nvm.layout`
module: header fields, the journal's arm state (EXACT/RANGE), the
CRC-checked buffer directory, a per-line occupancy map of the data
region, and a torn-line diagnosis attributing armed lines to buffers.

:func:`diff_heaps` compares two heap images line-by-line — the tool
for "what did this crash round actually change?" between a pre-kill
and post-kill image, or between two rounds of the harness.

Sharded heaps (:mod:`repro.nvm.sharded`) are inspected the same way:
:func:`inspect_sharded` decodes the CRC-guarded manifest plus every
shard file (each an ordinary v1 heap) into a
:class:`ShardedHeapReport` with per-shard torn diagnoses and a merged
view, and :func:`diff_paths` / :func:`inspect_path` dispatch on the
file's magic so the CLI works unchanged on either kind.

Reports serialize via ``to_dict`` into documents validated by
``src/repro/obs/schemas/heap_inspect.schema.json`` (v2).
"""

from __future__ import annotations

import mmap
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import HeapFormatError, HeapTruncatedError
from repro.nvm import layout

#: Differing/torn line-id lists are capped in reports; counts stay exact.
LINE_SAMPLE_CAP = 64


@dataclass(frozen=True)
class OccupancySegment:
    """One contiguous run of data-region lines: a buffer or a gap."""

    kind: str  # "buffer" | "gap"
    first_line: int
    n_lines: int
    name: str | None = None
    role: str | None = None
    #: Lines with at least one nonzero byte (buffers only; a gap's
    #: content is unowned and not read).
    nonzero_lines: int | None = None

    def to_dict(self) -> dict:
        out = {"kind": self.kind, "first_line": self.first_line,
               "n_lines": self.n_lines}
        if self.kind == "buffer":
            out["name"] = self.name
            out["role"] = self.role
            out["nonzero_lines"] = self.nonzero_lines
        return out


@dataclass(frozen=True)
class TornDiagnosis:
    """The journal's armed lines attributed to directory buffers."""

    armed: bool
    mode: str
    exact: bool
    n_lines: int
    by_buffer: dict[str, int]
    #: Armed line ids owned by no directory buffer (freed mid-flight,
    #: or journal/directory disagreement — always worth a look).
    unattributed: int
    lines_sample: tuple[int, ...]

    def to_dict(self) -> dict:
        return {
            "armed": self.armed,
            "mode": self.mode,
            "exact": self.exact,
            "n_lines": self.n_lines,
            "by_buffer": dict(self.by_buffer),
            "unattributed": self.unattributed,
            "lines_sample": list(self.lines_sample),
        }


@dataclass(frozen=True)
class HeapReport:
    """Everything ``repro inspect`` decodes from one heap file."""

    path: str
    file_size: int
    header: layout.HeapHeader
    journal: layout.JournalRecord
    entries: tuple[layout.HeapEntry, ...]
    occupancy: tuple[OccupancySegment, ...]
    torn: TornDiagnosis
    #: Data bytes the directory declares (end of the last buffer).
    data_extent: int

    def to_dict(self) -> dict:
        h = self.header
        return {
            "path": self.path,
            "file_size": self.file_size,
            "header": {
                "version": h.version,
                "line_size": h.line_size,
                "dir_capacity": h.dir_capacity,
                "data_offset": h.data_offset,
                "dir_len": h.dir_len,
                "dir_crc": h.dir_crc,
            },
            "journal": {
                "armed": self.journal.armed,
                "mode": self.journal.mode_name,
                "count": self.journal.count,
            },
            "buffers": [e.to_dict() for e in self.entries],
            "occupancy": [seg.to_dict() for seg in self.occupancy],
            "torn": self.torn.to_dict(),
            "data_extent": self.data_extent,
        }

    def render_text(self) -> str:
        h = self.header
        lines = [
            f"heap {self.path}",
            f"  format v{h.version}, line size {h.line_size} B, "
            f"file {self.file_size} B",
            f"  directory: {len(self.entries)} buffers in "
            f"{h.dir_len} B (capacity {h.dir_capacity} B, "
            f"crc 0x{h.dir_crc:08x} OK)",
            f"  data region: offset {h.data_offset}, "
            f"extent {self.data_extent} B",
            f"  journal: {self.journal.mode_name}"
            + (f", {self.torn.n_lines} armed line(s)"
               if self.journal.armed else " (clean)"),
        ]
        if self.torn.armed:
            for name, n in sorted(self.torn.by_buffer.items()):
                lines.append(f"    torn {name}: {n} line(s)")
            if self.torn.unattributed:
                lines.append(
                    f"    torn <unattributed>: {self.torn.unattributed} "
                    "line(s) owned by no buffer"
                )
        lines.append("  occupancy:")
        for seg in self.occupancy:
            span = (f"lines [{seg.first_line}, "
                    f"{seg.first_line + seg.n_lines})")
            if seg.kind == "gap":
                lines.append(f"    {span}  <gap> ({seg.n_lines} lines)")
            else:
                lines.append(
                    f"    {span}  {seg.name} ({seg.role}, "
                    f"{seg.nonzero_lines}/{seg.n_lines} lines nonzero)"
                )
        return "\n".join(lines)


@dataclass(frozen=True)
class BufferDiff:
    """Line-by-line comparison of one buffer present in both heaps."""

    name: str
    n_lines: int
    n_differing: int
    differing_sample: tuple[int, ...]
    #: Descriptor fields that differ (name -> [a, b]); when non-empty
    #: the data comparison is skipped (the images aren't comparable).
    descriptor_diff: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "n_lines": self.n_lines,
            "n_differing": self.n_differing,
            "differing_sample": list(self.differing_sample),
            "descriptor_diff": dict(self.descriptor_diff),
        }


@dataclass(frozen=True)
class HeapDiff:
    """The result of ``repro inspect A --diff B``."""

    path_a: str
    path_b: str
    header_diff: dict
    only_in_a: tuple[str, ...]
    only_in_b: tuple[str, ...]
    buffers: tuple[BufferDiff, ...]
    journal_a: layout.JournalRecord
    journal_b: layout.JournalRecord

    @property
    def identical(self) -> bool:
        return (not self.header_diff and not self.only_in_a
                and not self.only_in_b
                and all(not b.n_differing and not b.descriptor_diff
                        for b in self.buffers)
                and self.journal_a.armed == self.journal_b.armed
                and self.journal_a.lines == self.journal_b.lines)

    def to_dict(self) -> dict:
        return {
            "path_a": self.path_a,
            "path_b": self.path_b,
            "identical": self.identical,
            "header_diff": dict(self.header_diff),
            "only_in_a": list(self.only_in_a),
            "only_in_b": list(self.only_in_b),
            "buffers": [b.to_dict() for b in self.buffers],
            "journal": {
                "a": {"armed": self.journal_a.armed,
                      "mode": self.journal_a.mode_name},
                "b": {"armed": self.journal_b.armed,
                      "mode": self.journal_b.mode_name},
            },
        }

    def render_text(self) -> str:
        lines = [f"diff {self.path_a} vs {self.path_b}"]
        if self.identical:
            lines.append("  heaps are identical")
            return "\n".join(lines)
        for key, (va, vb) in sorted(self.header_diff.items()):
            lines.append(f"  header.{key}: {va} != {vb}")
        for name in self.only_in_a:
            lines.append(f"  buffer {name}: only in A")
        for name in self.only_in_b:
            lines.append(f"  buffer {name}: only in B")
        if self.journal_a.armed != self.journal_b.armed:
            lines.append(
                f"  journal: A {self.journal_a.mode_name} vs "
                f"B {self.journal_b.mode_name}"
            )
        for buf in self.buffers:
            if buf.descriptor_diff:
                lines.append(
                    f"  buffer {buf.name}: descriptors differ "
                    f"({', '.join(sorted(buf.descriptor_diff))}) — "
                    "data not comparable"
                )
            elif buf.n_differing:
                shown = ", ".join(str(i) for i in buf.differing_sample)
                more = buf.n_differing - len(buf.differing_sample)
                tail = f" (+{more} more)" if more else ""
                lines.append(
                    f"  buffer {buf.name}: {buf.n_differing}/"
                    f"{buf.n_lines} lines differ — lines {shown}{tail}"
                )
        return "\n".join(lines)


class _ColdHeap:
    """A heap file mapped strictly read-only, decoded but never touched."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        try:
            size = os.path.getsize(self.path)
        except OSError as exc:
            raise HeapTruncatedError(
                f"cannot stat heap file {self.path}: {exc}"
            ) from None
        if size < layout.DIR_OFFSET:
            raise HeapTruncatedError(
                f"heap file {self.path} is {size} bytes — smaller than "
                f"the {layout.DIR_OFFSET}-byte header+journal region"
            )
        self.file_size = size
        self._file = open(self.path, "rb")
        try:
            self._mm = mmap.mmap(self._file.fileno(), 0,
                                 access=mmap.ACCESS_READ)
        except (ValueError, OSError) as exc:
            self._file.close()
            raise HeapTruncatedError(
                f"cannot map heap file {self.path}: {exc}"
            ) from None
        try:
            self.header = layout.parse_header(
                self._mm[:layout.HEADER.size], self.path)
            if size < self.header.data_offset:
                raise HeapTruncatedError(
                    f"{self.path}: file ends at {size} bytes, before "
                    f"its data region at {self.header.data_offset}"
                )
            dir_end = layout.DIR_OFFSET + self.header.dir_len
            self.entries = layout.parse_directory(
                bytes(self._mm[layout.DIR_OFFSET:dir_end]),
                self.header.dir_crc, self.path)
            jend = layout.JOURNAL_OFFSET + layout.journal_region_size()
            self.journal = layout.parse_journal(
                self._mm[layout.JOURNAL_OFFSET:jend], self.path)
            extent = max(
                (e.base_addr + e.padded_bytes
                 for e in self.entries.values()),
                default=0,
            )
            if size < self.header.data_offset + extent:
                raise HeapTruncatedError(
                    f"{self.path}: directory declares {extent} data "
                    f"bytes but the file holds only "
                    f"{size - self.header.data_offset}"
                )
            self.data_extent = extent
        except Exception:
            self.close()
            raise

    def line_bytes(self, entry: layout.HeapEntry) -> np.ndarray:
        """The buffer's padded image as a (n_lines, line_size) u8 view."""
        start = self.header.data_offset + entry.base_addr
        raw = np.frombuffer(self._mm, dtype=np.uint8,
                            count=entry.padded_bytes, offset=start)
        return raw.reshape(-1, self.header.line_size)

    def close(self) -> None:
        try:
            self._mm.close()
        except (AttributeError, BufferError):
            pass
        self._file.close()

    def __enter__(self) -> "_ColdHeap":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _diagnose_torn(cold: _ColdHeap) -> TornDiagnosis:
    journal = cold.journal
    by_buffer: dict[str, int] = {}
    attributed = 0
    for entry in cold.entries.values():
        first, last = entry.line_span(cold.header.line_size)
        n = sum(1 for lid in journal.lines if first <= lid < last)
        if n:
            by_buffer[entry.name] = n
            attributed += n
    return TornDiagnosis(
        armed=journal.armed,
        mode=journal.mode_name,
        exact=journal.exact,
        n_lines=len(journal.lines),
        by_buffer=by_buffer,
        unattributed=len(journal.lines) - attributed,
        lines_sample=journal.lines[:LINE_SAMPLE_CAP],
    )


def _occupancy(cold: _ColdHeap) -> tuple[OccupancySegment, ...]:
    segments: list[OccupancySegment] = []
    cursor = 0
    ordered = sorted(cold.entries.values(), key=lambda e: e.base_addr)
    for entry in ordered:
        first, last = entry.line_span(cold.header.line_size)
        if first > cursor:
            segments.append(OccupancySegment(
                kind="gap", first_line=cursor, n_lines=first - cursor))
        lines = cold.line_bytes(entry)
        nonzero = int(np.count_nonzero(lines.any(axis=1)))
        segments.append(OccupancySegment(
            kind="buffer", first_line=first, n_lines=last - first,
            name=entry.name, role=entry.role, nonzero_lines=nonzero))
        cursor = max(cursor, last)
    return tuple(segments)


def inspect_heap(path) -> HeapReport:
    """Decode a heap file without mutating it (journal included).

    Raises the same typed errors as :meth:`MappedShadow.open` on
    corrupt, truncated or version-mismatched files.
    """
    with _ColdHeap(path) as cold:
        return HeapReport(
            path=str(cold.path),
            file_size=cold.file_size,
            header=cold.header,
            journal=cold.journal,
            entries=tuple(cold.entries.values()),
            occupancy=_occupancy(cold),
            torn=_diagnose_torn(cold),
            data_extent=cold.data_extent,
        )


@dataclass(frozen=True)
class ShardedHeapReport:
    """Manifest plus every shard's :class:`HeapReport`, read-only."""

    path: str
    n_shards: int
    line_size: int
    block_lines: int
    shard_names: tuple[str, ...]
    #: Address blocks the manifest currently maps to a shard.
    n_mapped_blocks: int
    #: Per-shard reports; index == shard id.
    shards: tuple[HeapReport, ...]

    def armed_shards(self) -> list[int]:
        """Shard ids whose torn-write journal the crash left armed."""
        return [k for k, report in enumerate(self.shards)
                if report.journal.armed]

    def merged_torn(self) -> dict:
        """Grid-wide torn view, merged exactly like the live reopen."""
        torn_lines = 0
        by_buffer: dict[str, int] = {}
        for report in self.shards:
            torn_lines += report.torn.n_lines
            for name, n in report.torn.by_buffer.items():
                by_buffer[name] = by_buffer.get(name, 0) + n
        return {"torn_lines": torn_lines, "torn_by_buffer": by_buffer}

    def to_dict(self) -> dict:
        merged = self.merged_torn()
        return {
            "path": self.path,
            "n_shards": self.n_shards,
            "line_size": self.line_size,
            "block_lines": self.block_lines,
            "shard_names": list(self.shard_names),
            "n_mapped_blocks": self.n_mapped_blocks,
            "armed_shards": self.armed_shards(),
            "torn_lines": merged["torn_lines"],
            "torn_by_buffer": merged["torn_by_buffer"],
            "shards": [report.to_dict() for report in self.shards],
        }

    def render_text(self) -> str:
        armed = self.armed_shards()
        merged = self.merged_torn()
        lines = [
            f"sharded heap {self.path}",
            f"  manifest: {self.n_shards} shard(s), line size "
            f"{self.line_size} B, {self.block_lines} line(s)/block, "
            f"{self.n_mapped_blocks} mapped block(s)",
            f"  journals: {len(armed)}/{self.n_shards} shard(s) armed"
            + (f" ({', '.join(str(k) for k in armed)}), "
               f"{merged['torn_lines']} torn line(s) total"
               if armed else " (all clean)"),
        ]
        for k, report in enumerate(self.shards):
            lines.append(f"  --- shard {k} ---")
            lines.extend("  " + line
                         for line in report.render_text().splitlines())
        return "\n".join(lines)


_DESCRIPTOR_FIELDS = ("dtype", "shape", "base_addr", "nbytes",
                      "padded_bytes", "role")


def _descriptor_diff(a: layout.HeapEntry, b: layout.HeapEntry) -> dict:
    da, db = a.to_dict(), b.to_dict()
    return {k: [da[k], db[k]] for k in _DESCRIPTOR_FIELDS
            if da[k] != db[k]}


def diff_heaps(path_a, path_b) -> HeapDiff:
    """Compare two heap images: headers, directories, data lines."""
    with _ColdHeap(path_a) as a, _ColdHeap(path_b) as b:
        header_diff = {}
        for key in ("version", "line_size", "data_offset"):
            va, vb = getattr(a.header, key), getattr(b.header, key)
            if va != vb:
                header_diff[key] = [va, vb]
        names_a, names_b = set(a.entries), set(b.entries)
        buffers: list[BufferDiff] = []
        for name in [n for n in a.entries if n in names_b]:
            ea, eb = a.entries[name], b.entries[name]
            desc = _descriptor_diff(ea, eb)
            n_lines = ea.padded_bytes // a.header.line_size
            if desc or header_diff:
                buffers.append(BufferDiff(
                    name=name, n_lines=n_lines, n_differing=0,
                    differing_sample=(), descriptor_diff=desc))
                continue
            la, lb = a.line_bytes(ea), b.line_bytes(eb)
            differ = np.nonzero((la != lb).any(axis=1))[0]
            first, _ = ea.line_span(a.header.line_size)
            buffers.append(BufferDiff(
                name=name, n_lines=n_lines, n_differing=len(differ),
                differing_sample=tuple(
                    int(first + i) for i in differ[:LINE_SAMPLE_CAP]),
            ))
        return HeapDiff(
            path_a=str(a.path), path_b=str(b.path),
            header_diff=header_diff,
            only_in_a=tuple(sorted(names_a - names_b)),
            only_in_b=tuple(sorted(names_b - names_a)),
            buffers=tuple(buffers),
            journal_a=a.journal, journal_b=b.journal,
        )


# ----------------------------------------------------------------------
# Sharded heaps: manifest + N shard files, still strictly read-only
# ----------------------------------------------------------------------


def _read_manifest_file(path: Path) -> layout.ShardManifest:
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise HeapTruncatedError(
            f"cannot read shard manifest {path}: {exc}"
        ) from None
    return layout.parse_manifest(raw, path)


def inspect_sharded(path) -> ShardedHeapReport:
    """Decode a shard manifest and every shard file, mutating nothing.

    The manifest is read with a plain ``read_bytes`` and each shard
    through the same cold ``ACCESS_READ`` path as :func:`inspect_heap`
    — armed journals stay armed on disk.
    """
    path = Path(path)
    manifest = _read_manifest_file(path)
    shards = tuple(
        inspect_heap(path.with_name(name))
        for name in manifest.shard_names
    )
    return ShardedHeapReport(
        path=str(path),
        n_shards=manifest.n_shards,
        line_size=manifest.line_size,
        block_lines=manifest.block_lines,
        shard_names=manifest.shard_names,
        n_mapped_blocks=len(manifest.block_map),
        shards=shards,
    )


def _is_manifest_file(path) -> bool:
    try:
        with open(Path(path), "rb") as fileobj:
            head = fileobj.read(len(layout.MANIFEST_MAGIC))
    except OSError as exc:
        raise HeapTruncatedError(
            f"cannot read heap file {path}: {exc}"
        ) from None
    return layout.is_manifest(head)


def inspect_path(path) -> HeapReport | ShardedHeapReport:
    """Inspect either kind of heap file, dispatching on its magic."""
    if _is_manifest_file(path):
        return inspect_sharded(path)
    return inspect_heap(path)


@dataclass(frozen=True)
class ShardedHeapDiff:
    """Two sharded heaps compared manifest-to-manifest, shard-by-shard."""

    path_a: str
    path_b: str
    #: Manifest fields that disagree (name -> [a, b]); per-shard data
    #: is still compared when only the block map differs, but a shard
    #: count mismatch leaves ``shards`` empty.
    manifest_diff: dict
    shards: tuple[HeapDiff, ...]

    @property
    def identical(self) -> bool:
        return (not self.manifest_diff
                and all(d.identical for d in self.shards))

    def to_dict(self) -> dict:
        return {
            "path_a": self.path_a,
            "path_b": self.path_b,
            "identical": self.identical,
            "manifest_diff": dict(self.manifest_diff),
            "shards": [d.to_dict() for d in self.shards],
        }

    def render_text(self) -> str:
        lines = [f"diff {self.path_a} vs {self.path_b} (sharded)"]
        if self.identical:
            lines.append("  sharded heaps are identical")
            return "\n".join(lines)
        for key, (va, vb) in sorted(self.manifest_diff.items()):
            lines.append(f"  manifest.{key}: {va} != {vb}")
        for k, d in enumerate(self.shards):
            if d.identical:
                continue
            lines.append(f"  --- shard {k} ---")
            lines.extend("  " + line
                         for line in d.render_text().splitlines()[1:])
        return "\n".join(lines)


def diff_sharded(path_a, path_b) -> ShardedHeapDiff:
    """Compare two sharded heaps: manifests, then each shard pair."""
    path_a, path_b = Path(path_a), Path(path_b)
    ma = _read_manifest_file(path_a)
    mb = _read_manifest_file(path_b)
    manifest_diff: dict = {}
    for key in ("n_shards", "line_size", "block_lines"):
        va, vb = getattr(ma, key), getattr(mb, key)
        if va != vb:
            manifest_diff[key] = [va, vb]
    if ma.block_map != mb.block_map:
        manifest_diff["block_map"] = [len(ma.block_map),
                                      len(mb.block_map)]
    shards: tuple[HeapDiff, ...] = ()
    if ma.n_shards == mb.n_shards:
        shards = tuple(
            diff_heaps(path_a.with_name(ma.shard_names[k]),
                       path_b.with_name(mb.shard_names[k]))
            for k in range(ma.n_shards)
        )
    return ShardedHeapDiff(path_a=str(path_a), path_b=str(path_b),
                           manifest_diff=manifest_diff, shards=shards)


def diff_paths(path_a, path_b) -> HeapDiff | ShardedHeapDiff:
    """Diff two heap files of the *same* kind, dispatching on magic."""
    a_sharded = _is_manifest_file(path_a)
    b_sharded = _is_manifest_file(path_b)
    if a_sharded != b_sharded:
        plain, manifest = ((path_b, path_a) if a_sharded
                           else (path_a, path_b))
        raise HeapFormatError(
            f"cannot diff a sharded heap ({manifest}) against a plain "
            f"heap file ({plain}); inspect one shard file directly to "
            "compare it with a plain heap"
        )
    if a_sharded:
        return diff_sharded(path_a, path_b)
    return diff_heaps(path_a, path_b)
