"""Exception hierarchy for the ``repro`` GPU Lazy Persistency library.

Every exception raised by this package derives from :class:`ReproError`,
so callers can catch the whole family with a single ``except`` clause.
Exceptions are grouped by the subsystem that raises them (memory model,
device execution, checksum tables, recovery, directive compiler).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An :class:`~repro.core.config.LPConfig` combination is invalid.

    Example: requesting a parallel (shuffle) reduction with an
    order-sensitive checksum such as Adler-32.
    """


class MemoryError_(ReproError):
    """Base class for simulated-memory errors.

    The trailing underscore avoids shadowing the :class:`MemoryError`
    builtin while keeping the name recognizable.
    """


class AllocationError(MemoryError_):
    """A buffer could not be allocated (duplicate name, bad shape, ...)."""


class OutOfBoundsError(MemoryError_):
    """A load/store addressed elements outside a buffer's extent."""


class DeviceError(ReproError):
    """The simulated device was driven through an invalid sequence."""


class LaunchError(DeviceError):
    """A kernel launch was malformed (zero blocks, bad block size, ...)."""


class CrashedDeviceError(DeviceError):
    """An operation requires a live device but the device has crashed.

    Raised when e.g. a kernel launch is attempted between ``crash()`` and
    ``restart()``.
    """


class TableError(ReproError):
    """Base class for checksum-table errors."""


class TableFullError(TableError):
    """An open-addressing insertion could not find a free slot."""


class RehashLimitError(TableError):
    """Cuckoo hashing exceeded its bound on consecutive rehash attempts."""


class DuplicateKeyError(TableError):
    """A key was inserted twice into a table that forbids duplicates."""


class HeapError(MemoryError_):
    """Base class for durable (mmap-backed) heap errors."""


class HeapFormatError(HeapError):
    """A heap file's header or directory is not in the expected format.

    Raised for a wrong magic number, nonsensical geometry fields, or an
    undecodable buffer directory.
    """


class HeapVersionError(HeapError):
    """A heap file was written by an incompatible format version."""


class HeapTruncatedError(HeapError):
    """A heap file is shorter than its own directory says it must be."""


class HeapCorruptError(HeapError):
    """A heap file's directory checksum does not match its contents."""


class HeapLayoutError(HeapError):
    """A heap file's buffer directory disagrees with the live memory
    layout it is being adopted into (names, dtypes, shapes or
    addresses diverged)."""


class HeapFullError(HeapError):
    """The heap file cannot hold another allocation (directory region
    exhausted)."""


class HarnessError(ReproError):
    """Base class for out-of-process crash-harness errors."""


class ChildStartupError(HarnessError):
    """A harness child process kept dying before reporting ready.

    Raised once the bounded retry/backoff spawn loop is exhausted.
    """


class ChildTimeoutError(HarnessError):
    """A harness child neither finished nor got killed within its
    deadline (the harness kills its process group before raising)."""


class RecoveryError(ReproError):
    """Crash recovery could not restore a consistent state."""


class ValidationError(RecoveryError):
    """Checksum validation was attempted against a malformed table."""


class UnrecoverableRegionError(RecoveryError):
    """A failed LP region has no recovery function.

    Raised for non-idempotent regions whose kernel does not provide a
    custom recovery implementation.
    """


class CompileError(ReproError):
    """Base class for directive-compiler errors."""


class DirectiveSyntaxError(CompileError):
    """A ``#pragma nvm`` directive could not be parsed."""


class DirectiveSemanticError(CompileError):
    """A directive parsed but is semantically invalid.

    Example: ``lpcuda_checksum`` referencing a checksum table that no
    ``lpcuda_init`` declared, or an unknown checksum-type token.
    """


class SliceError(CompileError):
    """The program slice of a store-address computation could not be built."""


class ServiceError(ReproError):
    """Base class for KV-service (daemon / protocol / client) errors."""


class ProtocolError(ServiceError):
    """A wire frame or request document violated the service protocol."""


class ServiceUnavailableError(ServiceError):
    """The daemon could not be reached (or the connection dropped)."""
