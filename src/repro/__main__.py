"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``experiments [ids...]``
    Run reproduction experiments (all by default) and print the
    paper-vs-measured tables with fidelity outcomes.
``workloads``
    List the benchmark workloads with their paper-scale launch shapes.
``run <workload> [--scale S] [--config C] [--crash-after N]``
    Launch one workload under LP, optionally crash it, recover, verify.
    ``--trace out.json`` records the run as a Chrome/Perfetto trace,
    ``--metrics out.json`` dumps the flight-recorder metrics snapshot,
    ``--json`` prints a structured result document instead of text.
    ``--telemetry out.jsonl`` starts a background sampler streaming
    periodic metric snapshots (counters, rates, gauges, quantiles) as
    JSONL; ``--prom out.prom`` writes the final state in Prometheus
    text exposition format.
``inspect <heap> [--json] [--diff OTHER] [--shards N]``
    Decode a ``MappedShadow`` heap file — or a sharded heap's manifest
    plus every shard — **read-only**: header, armed journal
    (EXACT/RANGE), CRC-checked directory, per-line occupancy,
    torn-line diagnosis (per shard and merged, for sharded heaps).
    Unlike opening the heap, inspection never clears a journal.
    ``--diff`` compares two heap images line-by-line (exit 1 when they
    differ); ``--shards N`` asserts the target is an N-shard manifest.
``watch <telemetry.jsonl> [--once] [--interval S]``
    Live view of a telemetry stream written by ``run --telemetry`` or
    ``crash-test --telemetry``: tails the JSONL file and renders the
    newest sample (rates, gauges, histogram quantiles) as it lands.
``profile <workload> [--scale S] [--crash-after N]``
    Run a workload with the flight recorder on and print a per-phase
    wall-time / modeled-cycles / NVM-traffic breakdown.
``crash-test [--workloads ...] [--engines ...] [--rounds N] [--shards N]``
    Out-of-process durability proof: SIGKILL child processes mid-launch
    against an mmap-backed heap, reopen the heap cold, validate and
    recover, and verify against the crash-free reference. With
    ``--shards N`` every cell runs against an N-shard heap and the
    launch round kills inside one shard's armed journal window.
    Writes a JSON report with ``--out``; exits 1 if any grid cell
    fails to converge.
``report [path]``
    Regenerate EXPERIMENTS.md.
``lint [targets...] [--format text|json] [--oracle] [--races]``
    Run the lplint static analyzer over kernel sources. Targets are
    ``builtin`` (every built-in workload + MegaKV kernel, the default),
    ``.cu``/``.cuh`` files (directive front-end), ``.py`` files, or
    directories. ``--races`` cross-checks the persistency race rules
    (LP008-LP010) against a quick bounded crash-state enumeration.
    Exits 1 on unsuppressed findings.
``mc [--workloads ...] [--budget N] [--engine E] [--scale S]``
    Bounded crash-state model checker: enumerate every reachable
    post-crash heap image of a workload launch (write-back prefixes ×
    torn-line windows × crash-race lotteries), run the real
    validate → recover pipeline on each distinct state, and report any
    state that fails to converge as a minimized counterexample. Exits
    1 if any counterexample is found.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.bench.experiments import EXPERIMENTS

    ids = args.ids or list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; "
              f"known: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    failures = 0
    for exp_id in ids:
        result = EXPERIMENTS[exp_id]()
        print(result.rendered)
        for name, ok in result.fidelity.items():
            print(f"  [{'PASS' if ok else 'FAIL'}] {name}")
            failures += 0 if ok else 1
        print()
    return 1 if failures else 0


def _cmd_workloads(_args: argparse.Namespace) -> int:
    from repro.bench.profiles import PROFILES
    from repro.workloads import WORKLOADS

    print(f"{'name':14s} {'paper blocks':>12s} {'threads':>8s} "
          f"{'bottleneck':>10s}")
    for name in WORKLOADS:
        profile = PROFILES[name]
        print(f"{name:14s} {profile.n_blocks:12,d} "
              f"{profile.threads_per_block:8d} "
              f"{profile.bottleneck:>10s}")
    print("\n(+ megakv: see repro.megakv / examples/megakv_server.py)")
    return 0


def _make_run(args: argparse.Namespace):
    """Shared device + LP-kernel setup for ``run`` and ``profile``.

    Returns an :class:`contextlib.ExitStack` as its last element; the
    caller must close it (it owns the scratch sharded heap when
    ``--shards`` is given).
    """
    import contextlib

    import repro
    from repro.workloads import make_workload

    configs = {
        "global-array": repro.LPConfig.paper_best(),
        "quadratic": repro.LPConfig.naive_quadratic(),
        "cuckoo": repro.LPConfig.naive_cuckoo(),
    }
    engine = repro.make_engine(args.engine, jobs=args.jobs)
    stack = contextlib.ExitStack()
    shadow = None
    if getattr(args, "shards", 0):
        from repro.harness.tmpdir import ManagedTmpdir
        from repro.nvm.sharded import ShardedShadow

        tmp = stack.enter_context(ManagedTmpdir())
        shadow = stack.enter_context(ShardedShadow.create(
            tmp.file("heap.lpnv"), n_shards=args.shards))
    try:
        device = repro.Device(cache_capacity_lines=args.cache_lines,
                              engine=engine, shadow=shadow)
        work = make_workload(args.workload, scale=args.scale,
                             seed=args.seed)
        kernel = work.setup(device)
        lp_kernel = repro.LPRuntime(
            device, configs[args.config]).instrument(kernel)
        crash_plan = None
        if args.crash_after is not None:
            crash_plan = repro.CrashPlan(after_blocks=args.crash_after,
                                         persist_fraction=0.3,
                                         seed=args.seed)
    except BaseException:
        stack.close()
        raise
    return device, work, lp_kernel, crash_plan, stack


def _cmd_run(args: argparse.Namespace) -> int:
    import json

    from repro import obs
    from repro.core.recovery import RecoveryManager

    device, work, lp_kernel, crash_plan, stack = _make_run(args)
    n_blocks = lp_kernel.launch_config().n_blocks
    quiet = args.json

    want_telemetry = bool(args.telemetry or args.prom)
    want_metrics = bool(args.metrics or args.json or want_telemetry)
    want_recorder = bool(args.trace or want_metrics)
    recorder = obs.Recorder(
        tracer=obs.Tracer(obs.MemorySink() if args.trace else None),
        metrics=obs.MetricsRegistry() if want_metrics
        else obs.NullMetrics(),
    ) if want_recorder else None
    if want_telemetry:
        from repro.gpu import shm

        recorder.sampler = obs.TelemetrySampler(
            recorder.metrics,
            interval=args.telemetry_interval,
            jsonl_path=args.telemetry,
            gauge_providers=[shm.publish_segment_gauges],
        )
        recorder.sampler.start()
    previous = obs.install(recorder) if recorder is not None else None

    try:
        if not quiet:
            print(f"{args.workload} ({args.scale}): {n_blocks} blocks, "
                  f"LP design {lp_kernel.config.describe()}")
        result = device.launch(lp_kernel, crash_plan=crash_plan)
        if not quiet:
            print(f"launch: {result.n_completed}/{n_blocks} blocks, "
                  f"{result.total_cycles:,.0f} modeled cycles"
                  + (", CRASHED" if result.crashed else ""))

        report = None
        if result.crashed:
            report = RecoveryManager(device, lp_kernel).recover()
            if not quiet:
                print(f"recovered {len(report.recovered_blocks)} regions "
                      f"in {report.total_recovery_cycles:,.0f} cycles")
                if report.forensics is not None:
                    print(report.forensics.render_text())
        work.verify(device)
        if not quiet:
            print("output verified against the reference.")
    finally:
        stack.close()
        if recorder is not None:
            if recorder.sampler is not None:
                # Final sample + thread join; the JSONL stream already
                # holds every earlier sample (flushed per line).
                recorder.sampler.stop()
                recorder.sampler.close()
            obs.install(previous)

    if args.telemetry and not quiet:
        print(f"telemetry stream written to {args.telemetry}")
    if args.prom:
        from repro.obs import to_prometheus

        with open(args.prom, "w") as fh:
            fh.write(to_prometheus(recorder.metrics_snapshot()))
        if not quiet:
            print(f"prometheus exposition written to {args.prom}")
    if args.trace:
        recorder.write_trace(args.trace, workload=args.workload,
                             scale=args.scale, engine=args.engine)
        if not quiet:
            print(f"trace written to {args.trace}")
    if args.metrics:
        with open(args.metrics, "w") as fh:
            json.dump(recorder.metrics_snapshot(), fh, indent=2)
            fh.write("\n")
        if not quiet:
            print(f"metrics written to {args.metrics}")

    if args.json:
        payload = {
            "workload": args.workload,
            "scale": args.scale,
            "config": args.config,
            "engine": args.engine,
            "shards": args.shards,
            "launch": result.to_dict(),
            "write_stats": device.memory.write_stats.to_dict(),
            "table_stats": lp_kernel.table.stats.to_dict(),
            "verified": True,
        }
        if report is not None:
            payload["recovery"] = {
                "recovered_blocks": len(report.recovered_blocks),
                "total_recovery_cycles": report.total_recovery_cycles,
                "forensics": None if report.forensics is None
                else report.forensics.to_dict(),
            }
        if recorder is not None and recorder.metrics.active:
            payload["metrics"] = recorder.metrics_snapshot()
        print(json.dumps(payload, indent=2))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json
    import time

    from repro import obs
    from repro.core.recovery import RecoveryManager
    from repro.obs.metrics import diff_counters

    device, work, lp_kernel, crash_plan, stack = _make_run(args)
    n_blocks = lp_kernel.launch_config().n_blocks
    phases: list[dict] = []

    def _nvm_lines(deltas: dict) -> float:
        return sum(v for k, v in deltas.items()
                   if k.startswith("nvm.writeback.lines"))

    with stack, obs.recording() as rec:

        def run_phase(name, fn):
            before = rec.metrics_snapshot()
            t0 = time.perf_counter()
            out = fn()
            wall_ms = (time.perf_counter() - t0) * 1e3
            deltas = diff_counters(before, rec.metrics_snapshot())
            phases.append({"phase": name, "wall_ms": wall_ms,
                           "cycles": 0.0,
                           "nvm_lines": _nvm_lines(deltas)})
            return out

        result = run_phase(
            "launch", lambda: device.launch(lp_kernel,
                                            crash_plan=crash_plan))
        phases[-1]["cycles"] = result.total_cycles

        report = None
        if result.crashed:
            report = run_phase(
                "recover",
                lambda: RecoveryManager(device, lp_kernel).recover())
            phases[-1]["cycles"] = report.total_recovery_cycles

        run_phase("drain", device.drain)
        check = run_phase(
            "validate",
            lambda: RecoveryManager(device, lp_kernel).validate())
        phases[-1]["cycles"] = check.launch.total_cycles
        run_phase("verify", lambda: work.verify(device))

    if args.trace:
        rec.write_trace(args.trace, workload=args.workload,
                        scale=args.scale, engine=args.engine,
                        command="profile")
    if args.metrics:
        with open(args.metrics, "w") as fh:
            json.dump(rec.metrics_snapshot(), fh, indent=2)
            fh.write("\n")

    if args.json:
        print(json.dumps({
            "workload": args.workload,
            "scale": args.scale,
            "engine": args.engine,
            "n_blocks": n_blocks,
            "crashed": result.crashed,
            "validation_failed_blocks": check.n_failed,
            "phases": phases,
        }, indent=2))
        return 0

    print(f"{args.workload} ({args.scale}): {n_blocks} blocks, "
          f"engine {args.engine}"
          + (", crashed + recovered" if result.crashed else ""))
    print(f"{'phase':10s} {'wall ms':>10s} {'modeled cycles':>16s} "
          f"{'NVM lines':>10s}")
    for row in phases:
        print(f"{row['phase']:10s} {row['wall_ms']:10.2f} "
              f"{row['cycles']:16,.0f} {row['nvm_lines']:10,.0f}")
    total_wall = sum(r["wall_ms"] for r in phases)
    total_lines = sum(r["nvm_lines"] for r in phases)
    print(f"{'total':10s} {total_wall:10.2f} {'':>16s} "
          f"{total_lines:10,.0f}")
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.metrics:
        print(f"metrics written to {args.metrics}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import findings_to_payload, render_text, run_lint

    targets = args.targets or ["builtin"]
    try:
        report, verdicts, mc_reports = run_lint(
            targets, oracle=args.oracle, races=args.races
        )
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.format == "json":
        payload = findings_to_payload(report)
        if verdicts:
            payload["oracle"] = {
                name: verdict.to_dict()
                for name, verdict in verdicts.items()
            }
        if mc_reports:
            payload["mc"] = {
                name: mc.to_dict() for name, mc in mc_reports.items()
            }
        print(json.dumps(payload, indent=2))
    else:
        print(render_text(report))
        for name, verdict in verdicts.items():
            state = "idempotent" if verdict.idempotent else "NON-IDEMPOTENT"
            print(f"oracle: {name}: {state} over blocks "
                  f"{verdict.tested_blocks}")
        for name, mc in mc_reports.items():
            state = ("converged" if mc.converged
                     else f"{len(mc.counterexamples)} COUNTEREXAMPLE(S)")
            print(f"mc: {name}: {state} over {mc.states_explored} "
                  f"distinct crash states")
    return report.exit_code


def _cmd_mc(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.crashmc import MCOptions, fixture_dict, run_mc

    options = MCOptions(
        scale=args.scale, seed=args.seed, config=args.config,
        engine=args.engine, jobs=args.jobs, cache_lines=args.cache_lines,
        budget=args.budget,
    )
    report = run_mc(list(args.workloads), options)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        if not args.json:
            print(f"report written to {args.out}")
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(f"mc: budget {options.budget}, engine {options.engine}, "
              f"scale {options.scale}, cache {options.cache_lines} lines")
        print(f"{'case':14s} {'events':>6s} {'distinct':>8s} "
              f"{'pruned':>6s} {'elapsed':>8s}  status")
        for case in report["cases"]:
            status = ("ok" if case["converged"]
                      else f"{len(case['counterexamples'])} "
                           f"counterexample(s)")
            if case["budget_exhausted"]:
                status += " (budget exhausted)"
            print(f"{case['case']:14s} {case['events']:6d} "
                  f"{case['states_explored']:8d} "
                  f"{case['states_pruned']:6d} "
                  f"{case['elapsed_s']:7.1f}s  {status}")
        total = report["total"]
        print(f"total: {total['states_explored']} distinct states, "
              f"{total['states_pruned']} pruned, "
              f"{total['counterexamples']} counterexample(s)")
    if not report["converged"] and args.fixtures_dir:
        from pathlib import Path

        outdir = Path(args.fixtures_dir)
        outdir.mkdir(parents=True, exist_ok=True)
        for case in report["cases"]:
            for i, ce_dict in enumerate(case["counterexamples"]):
                from repro.analysis.crashmc import Counterexample, CrashState

                ce = Counterexample(
                    case=ce_dict["case"],
                    state=CrashState.from_dict(ce_dict["state"]),
                    journal=ce_dict["journal"],
                    reason=ce_dict["reason"],
                    image_digest=ce_dict["image_digest"],
                )
                path = outdir / f"{ce.case}-{i}.json"
                with open(path, "w") as fh:
                    json.dump(fixture_dict(ce, options), fh, indent=2)
                    fh.write("\n")
                if not args.json:
                    print(f"counterexample fixture written to {path}")
    return 0 if report["converged"] else 1


def _cmd_inspect(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ReproError
    from repro.nvm.inspect import diff_paths, inspect_path

    try:
        if args.diff:
            report = diff_paths(args.heap, args.diff)
        else:
            report = inspect_path(args.heap)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.shards is not None and not args.diff:
        n_shards = getattr(report, "n_shards", 0)
        if n_shards != args.shards:
            kind = (f"a {n_shards}-shard manifest" if n_shards
                    else "a plain (unsharded) heap file")
            print(f"{args.heap}: expected a {args.shards}-shard "
                  f"manifest, found {kind}", file=sys.stderr)
            return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render_text())
    if args.diff:
        return 0 if report.identical else 1
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    import time

    from repro.obs import read_telemetry_jsonl, render_sample

    def latest_sample() -> dict | None:
        try:
            docs = read_telemetry_jsonl(args.file)
        except FileNotFoundError:
            return None
        return docs[-1] if docs else None

    last_seq = None
    deadline = (None if args.duration is None
                else time.monotonic() + args.duration)
    try:
        while True:
            doc = latest_sample()
            if doc is not None and doc.get("seq") != last_seq:
                last_seq = doc.get("seq")
                print(render_sample(doc, top=args.top), flush=True)
                print(flush=True)
            if args.once:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    if last_seq is None:
        print(f"no samples in {args.file}", file=sys.stderr)
        return 1
    return 0


def _cmd_crash_test(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.harness import render_text, run_grid, write_report

    def progress(label: str) -> None:
        if not args.json:
            print(f"crash-test: {label}", flush=True)

    if args.serve:
        import json

        from repro.harness.serve import render_serve_text, run_serve_scenario

        trigger = args.trigger
        if trigger == "writebacks:6":  # the grid default is too eager
            trigger = "writebacks:150"
        report = run_serve_scenario(
            shards=args.shards,
            seed=args.seed,
            engine=args.engines[0] if args.engines else "serial",
            kill_trigger=trigger,
            timeout=args.timeout,
            telemetry_path=args.telemetry,
            artifacts_dir=args.artifacts,
            progress=progress,
        )
        if args.out:
            with open(args.out, "w") as fh:
                json.dump(report, fh, indent=2)
                fh.write("\n")
            if not args.json:
                print(f"report written to {args.out}")
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            print(render_serve_text(report))
        return 0 if report["converged"] else 1

    previous = None
    recorder = None
    if args.telemetry:
        from repro.gpu import shm

        recorder = obs.Recorder(metrics=obs.MetricsRegistry())
        recorder.sampler = obs.TelemetrySampler(
            recorder.metrics,
            interval=args.telemetry_interval,
            jsonl_path=args.telemetry,
            gauge_providers=[shm.publish_segment_gauges],
        )
        recorder.sampler.start()
        previous = obs.install(recorder)
    try:
        report = run_grid(
            workloads=args.workloads,
            engines=args.engines,
            configs=args.configs,
            scale=args.scale,
            seed=args.seed,
            kill_rounds=args.rounds,
            trigger=args.trigger,
            jobs=args.jobs,
            cache_lines=args.cache_lines,
            timeout=args.timeout,
            progress=progress,
            kill_seed=args.kill_seed,
            trace_dir=args.trace,
            artifacts_dir=args.artifacts,
            shards=args.shards,
        )
    finally:
        if recorder is not None:
            recorder.sampler.stop()
            recorder.sampler.close()
            obs.install(previous)
    if args.telemetry and not args.json:
        print(f"telemetry stream written to {args.telemetry}")
    if args.out:
        write_report(report, args.out)
        if not args.json:
            print(f"report written to {args.out}")
    if args.json:
        import json

        print(json.dumps(report, indent=2))
    else:
        print(render_text(report))
    return 0 if report["converged"] else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.bench.make_experiments_md import main as make_md

    make_md(args.path)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json
    import signal

    from repro import obs
    from repro.service import KVServer, ServiceConfig

    config = ServiceConfig(
        capacity=args.capacity,
        engine=args.engine,
        jobs=args.jobs,
        cache_lines=args.cache_lines,
        config=args.config,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_cap=args.queue_cap,
    )
    address = args.socket if args.socket else (args.host, args.port)

    want_metrics = bool(args.telemetry or args.prom or args.stats)
    recorder = obs.Recorder(metrics=obs.MetricsRegistry()) \
        if want_metrics else None
    previous = obs.install(recorder) if recorder is not None else None
    try:
        server = KVServer(config, heap_path=args.heap,
                          shards=args.shards, address=address)
    except Exception:
        if recorder is not None:
            obs.install(previous)
        raise
    if args.kill_trigger:
        # Harness-internal: die with SIGKILL inside the armed
        # write-back window (or after N blocks / S seconds).
        server.install_kill_trigger(args.kill_trigger)
    if recorder is not None and args.telemetry:
        from repro.gpu import shm

        recorder.sampler = obs.TelemetrySampler(
            recorder.metrics,
            interval=args.telemetry_interval,
            jsonl_path=args.telemetry,
            gauge_providers=[shm.publish_segment_gauges,
                             server.publish_gauges],
        )
        recorder.sampler.start()

    def _on_signal(_signum, _frame):
        server.shutdown()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    server.start()
    bound = server.address
    rendered = bound if isinstance(bound, str) else f"{bound[0]}:{bound[1]}"
    if args.ready_file:
        # The harness waits on this marker; its content is the bound
        # address (TCP port 0 resolves here).
        with open(args.ready_file, "w") as fh:
            fh.write(rendered + "\n")
    resume = server.core.resume_info
    print(f"serving {server.core.backend()} store at {rendered} "
          f"(max_batch={config.max_batch}, "
          f"max_wait_ms={config.max_wait_ms}, "
          f"queue_cap={config.queue_cap})", flush=True)
    if resume["resumed"]:
        print(f"resumed: replayed {resume['replayed_launches']} "
              f"in-flight launch(es), recovered "
              f"{resume['recovered_blocks']} region(s), "
              f"{resume['torn_lines']} torn line(s)", flush=True)
    try:
        server.join()
    finally:
        if recorder is not None:
            if recorder.sampler is not None:
                recorder.sampler.stop()
                recorder.sampler.close()
            obs.install(previous)
    stats = server.stats()
    if args.stats:
        with open(args.stats, "w") as fh:
            json.dump(stats, fh, indent=2)
            fh.write("\n")
    if args.prom:
        from repro.obs import to_prometheus

        server.publish_gauges(recorder.metrics)
        with open(args.prom, "w") as fh:
            fh.write(to_prometheus(recorder.metrics_snapshot()))
    counters = stats["counters"]
    print(f"served {counters['acked']} request(s) in "
          f"{counters['windows']} window(s), shed {counters['shed']}; "
          "bye", flush=True)
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    from repro.service.bench import main as bench_main

    argv = ["--out", args.out]
    if args.quick:
        argv.append("--quick")
    if args.check:
        argv.append("--check")
    return bench_main(argv)


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="GPU Lazy Persistency reproduction (IISWC 2020).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments",
                           help="run reproduction experiments")
    p_exp.add_argument("ids", nargs="*",
                       help="experiment ids (default: all)")
    p_exp.set_defaults(fn=_cmd_experiments)

    p_wl = sub.add_parser("workloads", help="list benchmark workloads")
    p_wl.set_defaults(fn=_cmd_workloads)

    def add_run_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("workload")
        p.add_argument("--scale", default="small",
                       choices=("tiny", "small", "medium"))
        p.add_argument("--config", default="global-array",
                       choices=("global-array", "quadratic", "cuckoo"))
        p.add_argument("--crash-after", type=int, default=None,
                       metavar="N", help="crash after N blocks")
        p.add_argument("--cache-lines", type=int, default=64)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--engine", default="serial",
                       choices=("serial", "parallel", "batched"),
                       help="launch engine (all are bit-identical)")
        p.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker count (parallel; default: the "
                            "container-aware CPU budget) / "
                            "group size (batched)")
        p.add_argument("--shards", type=int, default=0, metavar="N",
                       help="run against an N-shard mapped NVM heap "
                            "in a scratch directory (default: "
                            "in-memory shadow)")
        p.add_argument("--trace", default=None, metavar="FILE",
                       help="write a Chrome/Perfetto trace JSON file")
        p.add_argument("--metrics", default=None, metavar="FILE",
                       help="write the metrics snapshot as JSON")
        p.add_argument("--json", action="store_true",
                       help="print a structured JSON result document")

    p_run = sub.add_parser("run", help="run a workload under LP")
    add_run_args(p_run)
    p_run.add_argument("--telemetry", default=None, metavar="FILE",
                       help="stream periodic metric samples (counters, "
                            "rates, gauges, quantiles) to this JSONL "
                            "file from a background sampler")
    p_run.add_argument("--telemetry-interval", type=float, default=0.25,
                       metavar="S", help="sampling period in seconds "
                                         "(default 0.25)")
    p_run.add_argument("--prom", default=None, metavar="FILE",
                       help="write the final metrics in Prometheus "
                            "text exposition format")
    p_run.set_defaults(fn=_cmd_run)

    p_prof = sub.add_parser(
        "profile",
        help="run with the flight recorder on; print a per-phase "
             "time/traffic breakdown")
    add_run_args(p_prof)
    p_prof.set_defaults(fn=_cmd_profile)

    p_lint = sub.add_parser("lint", help="run the lplint static analyzer")
    p_lint.add_argument("targets", nargs="*",
                        help="'builtin', files (.cu/.cuh/.py), or "
                             "directories (default: builtin)")
    p_lint.add_argument("--format", default="text",
                        choices=("text", "json"))
    p_lint.add_argument("--oracle", action="store_true",
                        help="cross-check builtin verdicts against the "
                             "dynamic re-execution oracle")
    p_lint.add_argument("--races", action="store_true",
                        help="cross-check the persistency race rules "
                             "(LP008-LP010) against a quick bounded "
                             "crash-state enumeration")
    p_lint.set_defaults(fn=_cmd_lint)

    p_mc = sub.add_parser(
        "mc",
        help="bounded crash-state model checker: enumerate reachable "
             "post-crash heap images and prove recovery converges on "
             "every one")
    p_mc.add_argument("--workloads", nargs="+", default=["spmv", "histo"],
                      help="workloads to check (default: spmv histo)")
    p_mc.add_argument("--budget", type=int, default=4000, metavar="N",
                      help="max candidate crash states per workload "
                           "(default 4000)")
    p_mc.add_argument("--engine", default="serial",
                      choices=("serial", "parallel", "batched"))
    p_mc.add_argument("--scale", default="small",
                      choices=("tiny", "small", "medium"))
    p_mc.add_argument("--config", default="global-array",
                      choices=("global-array", "quadratic", "cuckoo"))
    p_mc.add_argument("--cache-lines", type=int, default=2,
                      help="write-back cache capacity; small values "
                           "maximize eviction events and therefore the "
                           "reachable crash-state space (default 2)")
    p_mc.add_argument("--seed", type=int, default=7)
    p_mc.add_argument("--jobs", type=int, default=None, metavar="N")
    p_mc.add_argument("--out", default=None, metavar="FILE",
                      help="write the JSON report here")
    p_mc.add_argument("--json", action="store_true",
                      help="print the JSON report to stdout")
    p_mc.add_argument("--fixtures-dir", default="tests/fixtures/crashmc",
                      metavar="DIR",
                      help="where minimized counterexamples are "
                           "serialized (default tests/fixtures/crashmc)")
    p_mc.set_defaults(fn=_cmd_mc)

    p_ct = sub.add_parser(
        "crash-test",
        help="SIGKILL child processes against a durable mmap heap and "
             "prove recovery end to end")
    p_ct.add_argument("--workloads", nargs="+", default=["spmv", "tmm"],
                      help="workloads to kill (default: spmv tmm)")
    p_ct.add_argument("--engines", nargs="+", default=["serial",
                      "parallel", "batched"],
                      choices=("serial", "parallel", "batched"),
                      help="launch engines to cover")
    p_ct.add_argument("--configs", nargs="+", default=["global-array"],
                      choices=("global-array", "quadratic", "cuckoo"),
                      help="LP configs / checksum tables to cover")
    p_ct.add_argument("--scale", default="small",
                      choices=("tiny", "small", "medium"))
    p_ct.add_argument("--rounds", type=int, default=2, metavar="N",
                      help="kill rounds per cell: 1 mid-launch kill + "
                           "N-1 mid-recovery re-kills (default 2)")
    p_ct.add_argument("--trigger", default="writebacks:6",
                      help="kill trigger: writebacks:N | blocks:N | "
                           "walltime:SECONDS (default writebacks:6)")
    p_ct.add_argument("--cache-lines", type=int, default=4,
                      help="write-back cache capacity (small values "
                           "make kills lose more)")
    p_ct.add_argument("--seed", type=int, default=0)
    p_ct.add_argument("--kill-seed", type=int, default=None, metavar="N",
                      help="derive each round's kill threshold from a "
                           "deterministic per-cell stream seeded here, "
                           "instead of the fixed --trigger threshold; "
                           "per-round triggers land in the JSON report "
                           "for exact replay")
    p_ct.add_argument("--jobs", type=int, default=None, metavar="N")
    p_ct.add_argument("--shards", type=int, default=0, metavar="N",
                      help="run every cell against an N-shard heap; "
                           "the launch round becomes a shard-kill "
                           "round (die inside one shard's armed "
                           "journal while the others stay clean)")
    p_ct.add_argument("--timeout", type=float, default=120.0,
                      help="per-child deadline in seconds")
    p_ct.add_argument("--out", default=None, metavar="FILE",
                      help="write the JSON report here")
    p_ct.add_argument("--json", action="store_true",
                      help="print the JSON report to stdout")
    p_ct.add_argument("--trace", default=None, metavar="DIR",
                      help="export each child round's flight-recorder "
                           "trace as JSONL into this directory (the "
                           "stream survives the SIGKILL)")
    p_ct.add_argument("--artifacts", default=None, metavar="DIR",
                      help="copy each cell's post-kill heap image "
                           "(armed journal intact) into this directory "
                           "for later 'repro inspect'")
    p_ct.add_argument("--telemetry", default=None, metavar="FILE",
                      help="stream periodic metric samples to this "
                           "JSONL file while the grid runs")
    p_ct.add_argument("--telemetry-interval", type=float, default=0.25,
                      metavar="S",
                      help="sampling period in seconds (default 0.25)")
    p_ct.add_argument("--serve", action="store_true",
                      help="run the KV-daemon scenario instead of the "
                           "workload grid: SIGKILL the daemon mid-batch "
                           "under live client load, restart it on the "
                           "same heap, and prove every acked write "
                           "survives (honors --shards/--seed/--timeout/"
                           "--trigger/--telemetry/--out/--json)")
    p_ct.set_defaults(fn=_cmd_crash_test)

    p_ins = sub.add_parser(
        "inspect",
        help="decode a heap file read-only: header, armed journal, "
             "directory, occupancy, torn-line diagnosis")
    p_ins.add_argument("heap", help="path to a .lpnv heap file or a "
                                    "shard manifest")
    p_ins.add_argument("--diff", default=None, metavar="OTHER",
                       help="compare against a second heap image "
                            "line-by-line (exit 1 when they differ); "
                            "sharded heaps diff manifest + every "
                            "shard pair")
    p_ins.add_argument("--shards", type=int, default=None, metavar="N",
                       help="require the target to be an N-shard "
                            "manifest (exit 2 otherwise)")
    p_ins.add_argument("--json", action="store_true",
                       help="print the report as JSON (validated by "
                            "heap_inspect.schema.json)")
    p_ins.set_defaults(fn=_cmd_inspect)

    p_watch = sub.add_parser(
        "watch",
        help="live view of a telemetry JSONL stream written by "
             "'run --telemetry' / 'crash-test --telemetry'")
    p_watch.add_argument("file", help="telemetry JSONL file to tail")
    p_watch.add_argument("--interval", type=float, default=1.0,
                         metavar="S", help="poll period (default 1s)")
    p_watch.add_argument("--once", action="store_true",
                         help="render the newest sample and exit")
    p_watch.add_argument("--duration", type=float, default=None,
                         metavar="S", help="stop after S seconds "
                                           "(default: until Ctrl-C)")
    p_watch.add_argument("--top", type=int, default=12,
                         help="series shown per section (default 12)")
    p_watch.set_defaults(fn=_cmd_watch)

    p_srv = sub.add_parser(
        "serve",
        help="run the persistent MegaKV daemon (GET/PUT/DELETE over a "
             "socket, batched into LP-protected launches)")
    p_srv.add_argument("--heap", default=None, metavar="FILE",
                       help="durable heap path; created if missing, "
                            "cold-opened + recovered if present "
                            "(omit for a volatile in-memory store)")
    p_srv.add_argument("--shards", type=int, default=0, metavar="N",
                       help="back the store with an N-shard heap")
    p_srv.add_argument("--socket", default=None, metavar="PATH",
                       help="listen on a Unix socket at PATH "
                            "(default: TCP on --host/--port)")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = ephemeral; see --ready-file)")
    p_srv.add_argument("--capacity", type=int, default=8192,
                       help="store record capacity (slots are 8x)")
    p_srv.add_argument("--engine", default="serial",
                       choices=("serial", "parallel", "batched"))
    p_srv.add_argument("--jobs", type=int, default=None, metavar="N")
    p_srv.add_argument("--cache-lines", type=int, default=256)
    p_srv.add_argument("--config", default="global-array",
                       choices=("global-array", "quadratic", "cuckoo"))
    p_srv.add_argument("--max-batch", type=int, default=128,
                       help="flush the batching window at this many "
                            "requests")
    p_srv.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="... or this many ms after its first one")
    p_srv.add_argument("--queue-cap", type=int, default=1024,
                       help="admission-control bound; beyond it "
                            "requests are shed")
    p_srv.add_argument("--ready-file", default=None, metavar="FILE",
                       help="write the bound address here once serving")
    p_srv.add_argument("--stats", default=None, metavar="FILE",
                       help="write the final stats JSON here on exit")
    p_srv.add_argument("--telemetry", default=None, metavar="FILE",
                       help="stream periodic metric samples (queue "
                            "depth, occupancy, sheds) to this JSONL")
    p_srv.add_argument("--telemetry-interval", type=float, default=0.25,
                       metavar="S")
    p_srv.add_argument("--prom", default=None, metavar="FILE",
                       help="write a Prometheus exposition on exit")
    p_srv.add_argument("--kill-trigger", default=None, metavar="SPEC",
                       help=argparse.SUPPRESS)  # harness-internal
    p_srv.set_defaults(fn=_cmd_serve)

    p_bsrv = sub.add_parser(
        "bench-serve",
        help="measure service p50/p99 latency and QPS into "
             "BENCH_serve.json")
    p_bsrv.add_argument("--out", default="BENCH_serve.json")
    p_bsrv.add_argument("--quick", action="store_true",
                        help="smaller request counts (CI smoke)")
    p_bsrv.add_argument("--check", action="store_true",
                        help="exit non-zero when a gate fails")
    p_bsrv.set_defaults(fn=_cmd_bench_serve)

    p_rep = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    p_rep.add_argument("path", nargs="?", default=None)
    p_rep.set_defaults(fn=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
