"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``experiments [ids...]``
    Run reproduction experiments (all by default) and print the
    paper-vs-measured tables with fidelity outcomes.
``workloads``
    List the benchmark workloads with their paper-scale launch shapes.
``run <workload> [--scale S] [--config C] [--crash-after N]``
    Launch one workload under LP, optionally crash it, recover, verify.
``report [path]``
    Regenerate EXPERIMENTS.md.
``lint [targets...] [--format text|json] [--oracle]``
    Run the lplint static analyzer over kernel sources. Targets are
    ``builtin`` (every built-in workload + MegaKV kernel, the default),
    ``.cu``/``.cuh`` files (directive front-end), ``.py`` files, or
    directories. Exits 1 on unsuppressed findings.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.bench.experiments import EXPERIMENTS

    ids = args.ids or list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; "
              f"known: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    failures = 0
    for exp_id in ids:
        result = EXPERIMENTS[exp_id]()
        print(result.rendered)
        for name, ok in result.fidelity.items():
            print(f"  [{'PASS' if ok else 'FAIL'}] {name}")
            failures += 0 if ok else 1
        print()
    return 1 if failures else 0


def _cmd_workloads(_args: argparse.Namespace) -> int:
    from repro.bench.profiles import PROFILES
    from repro.workloads import WORKLOADS

    print(f"{'name':14s} {'paper blocks':>12s} {'threads':>8s} "
          f"{'bottleneck':>10s}")
    for name in WORKLOADS:
        profile = PROFILES[name]
        print(f"{name:14s} {profile.n_blocks:12,d} "
              f"{profile.threads_per_block:8d} "
              f"{profile.bottleneck:>10s}")
    print("\n(+ megakv: see repro.megakv / examples/megakv_server.py)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    import repro
    from repro.core.recovery import RecoveryManager
    from repro.workloads import make_workload

    configs = {
        "global-array": repro.LPConfig.paper_best(),
        "quadratic": repro.LPConfig.naive_quadratic(),
        "cuckoo": repro.LPConfig.naive_cuckoo(),
    }
    engine = repro.make_engine(args.engine, jobs=args.jobs)
    device = repro.Device(cache_capacity_lines=args.cache_lines,
                          engine=engine)
    work = make_workload(args.workload, scale=args.scale, seed=args.seed)
    kernel = work.setup(device)
    lp_kernel = repro.LPRuntime(device,
                                configs[args.config]).instrument(kernel)
    n_blocks = kernel.launch_config().n_blocks
    print(f"{args.workload} ({args.scale}): {n_blocks} blocks, "
          f"LP design {lp_kernel.config.describe()}")

    crash_plan = None
    if args.crash_after is not None:
        crash_plan = repro.CrashPlan(after_blocks=args.crash_after,
                                     persist_fraction=0.3, seed=args.seed)
    result = device.launch(lp_kernel, crash_plan=crash_plan)
    print(f"launch: {result.n_completed}/{n_blocks} blocks, "
          f"{result.total_cycles:,.0f} modeled cycles"
          + (", CRASHED" if result.crashed else ""))

    if result.crashed:
        report = RecoveryManager(device, lp_kernel).recover()
        print(f"recovered {len(report.recovered_blocks)} regions in "
              f"{report.total_recovery_cycles:,.0f} cycles")
    work.verify(device)
    print("output verified against the reference.")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import findings_to_payload, render_text, run_lint

    targets = args.targets or ["builtin"]
    try:
        report, verdicts = run_lint(targets, oracle=args.oracle)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.format == "json":
        payload = findings_to_payload(report)
        if verdicts:
            payload["oracle"] = {
                name: verdict.to_dict()
                for name, verdict in verdicts.items()
            }
        print(json.dumps(payload, indent=2))
    else:
        print(render_text(report))
        for name, verdict in verdicts.items():
            state = "idempotent" if verdict.idempotent else "NON-IDEMPOTENT"
            print(f"oracle: {name}: {state} over blocks "
                  f"{verdict.tested_blocks}")
    return report.exit_code


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.bench.make_experiments_md import main as make_md

    make_md(args.path)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="GPU Lazy Persistency reproduction (IISWC 2020).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments",
                           help="run reproduction experiments")
    p_exp.add_argument("ids", nargs="*",
                       help="experiment ids (default: all)")
    p_exp.set_defaults(fn=_cmd_experiments)

    p_wl = sub.add_parser("workloads", help="list benchmark workloads")
    p_wl.set_defaults(fn=_cmd_workloads)

    p_run = sub.add_parser("run", help="run a workload under LP")
    p_run.add_argument("workload")
    p_run.add_argument("--scale", default="small",
                       choices=("tiny", "small", "medium"))
    p_run.add_argument("--config", default="global-array",
                       choices=("global-array", "quadratic", "cuckoo"))
    p_run.add_argument("--crash-after", type=int, default=None,
                       metavar="N", help="crash after N blocks")
    p_run.add_argument("--cache-lines", type=int, default=64)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--engine", default="serial",
                       choices=("serial", "parallel", "batched"),
                       help="launch engine (all are bit-identical)")
    p_run.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker count (parallel) / group size (batched)")
    p_run.set_defaults(fn=_cmd_run)

    p_lint = sub.add_parser("lint", help="run the lplint static analyzer")
    p_lint.add_argument("targets", nargs="*",
                        help="'builtin', files (.cu/.cuh/.py), or "
                             "directories (default: builtin)")
    p_lint.add_argument("--format", default="text",
                        choices=("text", "json"))
    p_lint.add_argument("--oracle", action="store_true",
                        help="cross-check builtin verdicts against the "
                             "dynamic re-execution oracle")
    p_lint.set_defaults(fn=_cmd_lint)

    p_rep = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    p_rep.add_argument("path", nargs="?", default=None)
    p_rep.set_defaults(fn=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
