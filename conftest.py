"""Repo-root pytest configuration.

Ensures ``src/`` is importable even when the package has not been
installed (the reproduction environment is offline and pip editable
installs need the absent ``wheel`` package; ``python setup.py develop``
works, but this fallback makes ``pytest`` self-sufficient either way).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
